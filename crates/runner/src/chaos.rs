//! Seeded, deterministic fault injection for the runner's recovery
//! paths — the lab pointing its own instrument at itself.
//!
//! The paper's method is injecting controlled interrupts and measuring
//! degradation; this module does the same to the experiment runner. A
//! [`ChaosPlan`] is a pure function from a seed and a cell identity to a
//! [`Fault`], so a fault schedule is exactly as reproducible as the
//! experiments it disturbs: the same plan over the same campaign injects
//! the same panics, stragglers, and cache corruptions every time, on any
//! thread count.
//!
//! Compiled only for tests and the `chaos` cargo feature (the CI chaos
//! gate runs `cargo test -p runner --features chaos`); it never ships in
//! a measurement binary. Injected panic messages all carry the
//! `"chaos:"` marker so [`quiet_injected_panics`] can keep expected
//! panics out of test output while letting real ones through.
// smi-lint: allow(wall-clock): fault injection (stragglers) manipulates
// real time by design; this file is also on the per-file whitelist.

use crate::cache::{self, CacheKey};
use crate::{Cell, CellSpec};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// The fault a plan assigns to one cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Leave the cell alone.
    None,
    /// Panic on the first `n` attempts, then let the real work run —
    /// a transient fault a bounded retry budget must absorb.
    PanicFirst(u32),
    /// Panic on every attempt — a permanent fault that must quarantine
    /// exactly this cell and nothing else.
    PanicAlways,
    /// Reject the cell with a structured reason instead of running the
    /// real work — what a simulator `SimError` looks like to the runner.
    /// Must quarantine immediately (no retries) and degrade, not fail,
    /// the campaign.
    Invalid,
    /// Sleep this many milliseconds before the real work — an
    /// artificial straggler. Slows the campaign; must never change its
    /// bytes.
    Straggle(u64),
    /// `std::process::abort()` on every attempt — kills the *whole
    /// process*, no unwinding, no journal line from the victim. Only
    /// meaningful under process isolation, where the supervisor must
    /// survive it; in-process it would (correctly) take the test down.
    Abort,
    /// Never return: sleep in a loop forever. Under process isolation
    /// the supervisor's wall-clock watchdog must shoot the worker.
    Hang,
}

/// A deterministic fault schedule over a campaign.
///
/// Probabilities are per-mille (0..=1000) and drawn independently per
/// cell from `hash(seed, experiment, cell)`; `pinned` entries override
/// the draw for named cells, which is how tests aim a specific fault at
/// a specific cell.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Root seed of the schedule.
    pub seed: u64,
    /// Per-mille chance a cell gets [`Fault::PanicFirst`].
    pub transient_per_mille: u32,
    /// Per-mille chance a cell gets [`Fault::PanicAlways`].
    pub permanent_per_mille: u32,
    /// Per-mille chance a cell gets [`Fault::Straggle`].
    pub straggler_per_mille: u32,
    /// Per-mille chance a cell gets [`Fault::Abort`] (process death —
    /// draw only makes sense for isolated-mode campaigns).
    pub abort_per_mille: u32,
    /// Per-mille chance a cell gets [`Fault::Hang`] (wedged forever —
    /// draw only makes sense for isolated-mode campaigns).
    pub hang_per_mille: u32,
    /// Attempts a transient fault consumes before the work succeeds.
    pub transient_attempts: u32,
    /// Straggler sleep, in milliseconds.
    pub straggle_millis: u64,
    /// `(cell label, fault)` overrides applied before any random draw.
    pub pinned: Vec<(String, Fault)>,
}

impl ChaosPlan {
    /// A plan that injects nothing (override with `pinned` to aim
    /// specific faults).
    pub fn calm(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            transient_per_mille: 0,
            permanent_per_mille: 0,
            straggler_per_mille: 0,
            abort_per_mille: 0,
            hang_per_mille: 0,
            transient_attempts: 1,
            straggle_millis: 1,
            pinned: Vec::new(),
        }
    }

    /// The fault this plan assigns to a cell — a pure function of the
    /// plan and the cell identity.
    pub fn fault_for(&self, spec: &CellSpec) -> Fault {
        if let Some((_, fault)) = self.pinned.iter().find(|(label, _)| *label == spec.cell) {
            return *fault;
        }
        // Independent per-mille draws from disjoint lanes of the same
        // per-cell hash, checked in severity order.
        let h = cell_mix(self.seed, spec);
        if ((h % 1000) as u32) < self.permanent_per_mille {
            return Fault::PanicAlways;
        }
        if (((h >> 10) % 1000) as u32) < self.transient_per_mille {
            return Fault::PanicFirst(self.transient_attempts.max(1));
        }
        if (((h >> 20) % 1000) as u32) < self.straggler_per_mille {
            return Fault::Straggle(self.straggle_millis);
        }
        if (((h >> 30) % 1000) as u32) < self.abort_per_mille {
            return Fault::Abort;
        }
        if (((h >> 40) % 1000) as u32) < self.hang_per_mille {
            return Fault::Hang;
        }
        Fault::None
    }
}

/// FNV-1a over (experiment, cell) xor-seeded, folded through splitmix
/// for avalanche — the same construction the cache key uses, so per-cell
/// draws are well spread even for dense cell labels like `c0..c49`.
fn cell_mix(seed: u64, spec: &CellSpec) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ seed;
    for b in spec.experiment.bytes().chain([0u8]).chain(spec.cell.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wrap each cell's work closure with the fault its plan assigns it.
/// Unafflicted cells pass through untouched; afflicted cells keep their
/// identity (and therefore their cache key) — only the work misbehaves.
pub fn afflict(plan: &ChaosPlan, cells: Vec<Cell>) -> Vec<Cell> {
    cells
        .into_iter()
        .map(|cell| {
            let fault = plan.fault_for(&cell.spec);
            if fault == Fault::None {
                return cell;
            }
            let attempts = Arc::new(AtomicU32::new(0));
            let inner = cell.work;
            let cell_label = cell.spec.cell.clone();
            Cell {
                spec: cell.spec,
                work: Box::new(move || {
                    let attempt = attempts.fetch_add(1, Ordering::Relaxed);
                    match fault {
                        Fault::None => {}
                        Fault::PanicFirst(n) if attempt < n => {
                            // smi-lint: allow(no-panic): the injected fault *is* the panic
                            panic!("chaos: transient fault in {cell_label} (attempt {attempt})");
                        }
                        Fault::PanicFirst(_) => {}
                        Fault::PanicAlways => {
                            // smi-lint: allow(no-panic): the injected fault *is* the panic
                            panic!("chaos: permanent fault in {cell_label}");
                        }
                        Fault::Invalid => {
                            return Err(jsonio::Json::obj(vec![
                                ("kind", jsonio::Json::Str("chaos-invalid".into())),
                                (
                                    "message",
                                    jsonio::Json::Str(format!(
                                        "chaos: injected invalid cell {cell_label}"
                                    )),
                                ),
                            ]));
                        }
                        Fault::Straggle(millis) => {
                            std::thread::sleep(std::time::Duration::from_millis(millis));
                        }
                        Fault::Abort => {
                            eprintln!("chaos: aborting process in {cell_label}");
                            std::process::abort();
                        }
                        Fault::Hang => loop {
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        },
                    }
                    inner()
                }),
            }
        })
        .collect()
}

/// Overwrite a cell's cache entry with bytes that are not JSON — a
/// rotted disk block. Returns false if the entry does not exist.
pub fn corrupt_entry(dir: &Path, key: CacheKey) -> bool {
    let path = cache::entry_path(dir, key);
    path.is_file() && std::fs::write(&path, b"\x00chaos rot\xff\xfe not json").is_ok()
}

/// Truncate a cell's cache entry to half its length — the torn tail a
/// kill mid-write (without the tmp+rename discipline) would leave.
/// Byte-based on purpose: truncation must not care about UTF-8
/// boundaries. Returns false if the entry does not exist.
pub fn truncate_entry(dir: &Path, key: CacheKey) -> bool {
    let path = cache::entry_path(dir, key);
    let Ok(bytes) = std::fs::read(&path) else { return false };
    std::fs::write(&path, &bytes[..bytes.len() / 2]).is_ok()
}

/// Strand a fake `*.tmp.*` temp-file sibling next to a cell's entry —
/// what a SIGKILL between temp write and rename leaves behind for
/// `cache::sweep_orphans` to collect. Returns the stranded path.
pub fn strand_tmp(dir: &Path, key: CacheKey) -> std::io::Result<PathBuf> {
    let path = cache::entry_path(dir, key);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_file_name(format!(
        "{}.tmp.999999.0",
        path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
    ));
    std::fs::write(&tmp, "chaos: torn half-written entry")?;
    Ok(tmp)
}

/// Install (once, process-wide) a panic hook that silences panics whose
/// message carries the `"chaos:"` marker and forwards everything else to
/// the previous hook. Worker-thread panics are not captured by the test
/// harness, so without this every *expected* injected fault would spray
/// backtrace noise over the test output and bury a real failure.
pub fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("chaos:"))
                .unwrap_or(false)
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.contains("chaos:"))
                    .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonio::Json;

    fn spec(cell: &str) -> CellSpec {
        CellSpec {
            experiment: "chaos-test".into(),
            cell: cell.into(),
            params: Json::Null,
            seed: 7,
            reps: 1,
        }
    }

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let mut plan = ChaosPlan::calm(42);
        plan.transient_per_mille = 300;
        plan.permanent_per_mille = 100;
        plan.straggler_per_mille = 200;
        let draws: Vec<Fault> = (0..64).map(|i| plan.fault_for(&spec(&format!("c{i}")))).collect();
        let again: Vec<Fault> = (0..64).map(|i| plan.fault_for(&spec(&format!("c{i}")))).collect();
        assert_eq!(draws, again, "same plan, same schedule");
        let mut other = plan.clone();
        other.seed = 43;
        let moved: Vec<Fault> = (0..64).map(|i| other.fault_for(&spec(&format!("c{i}")))).collect();
        assert_ne!(draws, moved, "a different seed must move the schedule");
        assert!(
            draws.iter().any(|f| *f != Fault::None),
            "with these rates, 64 cells must draw at least one fault"
        );
    }

    #[test]
    fn pinned_faults_override_draws() {
        let mut plan = ChaosPlan::calm(1);
        plan.pinned.push(("c3".into(), Fault::PanicAlways));
        assert_eq!(plan.fault_for(&spec("c3")), Fault::PanicAlways);
        assert_eq!(plan.fault_for(&spec("c4")), Fault::None);
    }

    #[test]
    fn afflicted_transient_cell_panics_then_recovers() {
        quiet_injected_panics();
        let mut plan = ChaosPlan::calm(1);
        plan.pinned.push(("c0".into(), Fault::PanicFirst(2)));
        let cells = vec![Cell::new(spec("c0"), || Json::U64(11))];
        let cells = afflict(&plan, cells);
        let work = &cells[0].work;
        for _ in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(work));
            assert!(r.is_err(), "first two attempts panic");
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(work));
        assert_eq!(r.ok(), Some(Ok(Json::U64(11))), "third attempt yields the real payload");
    }

    #[test]
    fn invalid_fault_rejects_with_a_structured_reason() {
        let mut plan = ChaosPlan::calm(1);
        plan.pinned.push(("c0".into(), Fault::Invalid));
        let cells = afflict(&plan, vec![Cell::new(spec("c0"), || Json::U64(11))]);
        let reason = (cells[0].work)().expect_err("invalid fault must reject");
        assert_eq!(reason.get("kind").and_then(|k| k.as_str()), Some("chaos-invalid"));
        assert!(reason.get("message").and_then(|m| m.as_str()).is_some_and(|m| m.contains("c0")));
    }
}
