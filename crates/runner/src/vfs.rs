//! Fault-injectable filesystem layer: every byte the runner persists
//! goes through a [`Vfs`] handle, so the storage stack's crash- and
//! fault-consistency claims are *tested against injected disk faults*
//! instead of assumed.
//!
//! A [`Vfs`] is a cheap cloneable handle. The default [`Vfs::real`]
//! passes straight through to `std::fs`. [`Vfs::faulty`] wraps the same
//! operations with a seeded [`FaultPlan`] — the same deterministic
//! per-mille-draw construction as [`crate::chaos`], but over *storage
//! operations* rather than cells: every read, atomic write, append,
//! rename, and remove rolls against the plan, and an unlucky roll
//! injects one of the six fault families the durability suite must
//! survive:
//!
//! | fault        | injected as |
//! |--------------|-------------|
//! | torn write   | half the bytes land, the operation reports failure — and for atomic writes the *torn file is renamed into place*, the nastiest crash shape |
//! | short read   | the read silently returns a truncated prefix (checksums must catch it) |
//! | ENOSPC       | half the bytes land in the temp file, which is removed; the op errors |
//! | EIO          | the op errors with nothing written |
//! | rename fail  | the temp file is fully written, then the publish rename errors |
//! | dropped fsync| the pre-rename fsync is silently skipped (the write "succeeds") |
//!
//! Draws are a pure function of `(plan seed, operation counter)`, so a
//! single-threaded campaign replays the identical fault sequence every
//! time; `pin=` entries force a specific fault on the next N operations
//! matching an op kind and a path substring, for surgical tests.
//! Injection is compiled unconditionally (no feature gate) because the
//! CI durability gate drives the *release* binary with `--vfs-faults`.

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Storage operation classes a fault plan can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Whole-file read (`read_to_string`).
    Read,
    /// Atomic publish: temp write + fsync + rename.
    Write,
    /// Append one line to an open log handle.
    Append,
    /// Standalone rename.
    Rename,
    /// File removal.
    Remove,
}

impl OpKind {
    fn parse(label: &str) -> Option<OpKind> {
        match label {
            "read" => Some(OpKind::Read),
            "write" => Some(OpKind::Write),
            "append" => Some(OpKind::Append),
            "rename" => Some(OpKind::Rename),
            "remove" => Some(OpKind::Remove),
            _ => None,
        }
    }
}

/// The injectable fault families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Half the bytes land; atomic writes still publish the torn file.
    TornWrite,
    /// Reads silently return a truncated prefix.
    ShortRead,
    /// Out of space: partial temp write, cleaned up, error returned.
    Enospc,
    /// Hard I/O error, nothing transferred.
    Eio,
    /// The temp file lands whole but the publish rename fails.
    RenameFail,
    /// The pre-rename fsync silently does not happen.
    DropFsync,
}

impl FaultKind {
    fn parse(label: &str) -> Option<FaultKind> {
        match label {
            "torn" => Some(FaultKind::TornWrite),
            "shortread" => Some(FaultKind::ShortRead),
            "enospc" => Some(FaultKind::Enospc),
            "eio" => Some(FaultKind::Eio),
            "renamefail" => Some(FaultKind::RenameFail),
            "dropfsync" => Some(FaultKind::DropFsync),
            _ => None,
        }
    }

    fn error(self) -> std::io::Error {
        match self {
            FaultKind::TornWrite => std::io::Error::other("vfs injected: torn write"),
            FaultKind::ShortRead => std::io::Error::other("vfs injected: short read"),
            FaultKind::Enospc => std::io::Error::other("vfs injected: ENOSPC"),
            FaultKind::Eio => std::io::Error::other("vfs injected: EIO"),
            FaultKind::RenameFail => std::io::Error::other("vfs injected: rename failure"),
            FaultKind::DropFsync => std::io::Error::other("vfs injected: dropped fsync"),
        }
    }
}

/// One pinned fault: force `fault` on the next `remaining` operations of
/// kind `op` whose path contains `substr`.
#[derive(Debug)]
struct Pin {
    op: OpKind,
    substr: String,
    fault: FaultKind,
    remaining: AtomicU64,
}

/// A seeded fault schedule over storage operations.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Seed mixed into every draw.
    pub seed: u64,
    /// Per-mille torn-write rate on writes and appends.
    pub torn_permille: u16,
    /// Per-mille short-read rate on reads.
    pub short_read_permille: u16,
    /// Per-mille ENOSPC rate on writes and appends.
    pub enospc_permille: u16,
    /// Per-mille EIO rate on every operation class.
    pub eio_permille: u16,
    /// Per-mille rename-failure rate on atomic writes and renames.
    pub rename_fail_permille: u16,
    /// Per-mille dropped-fsync rate on atomic writes.
    pub drop_fsync_permille: u16,
    pins: Vec<Pin>,
}

impl FaultPlan {
    /// Pin a fault: the next `count` operations of kind `op` whose path
    /// contains `substr` fail with `fault`, bypassing the random draw.
    pub fn pin(&mut self, op: OpKind, substr: &str, fault: FaultKind, count: u64) {
        self.pins.push(Pin {
            op,
            substr: substr.to_string(),
            fault,
            remaining: AtomicU64::new(count),
        });
    }

    /// Parse a CLI spec: comma-separated `key=value` pairs.
    ///
    /// ```text
    /// seed=7,torn=20,shortread=10,enospc=10,eio=5,renamefail=10,dropfsync=50
    /// pin=append:journal:enospc:2      # op : path-substring : fault [: count]
    /// ```
    ///
    /// Rates are per-mille (0..=1000). Unknown keys, bad numbers, or a
    /// malformed `pin=` entry are errors — a mistyped fault plan must
    /// never silently run fault-free.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("fault spec {part:?} is not k=v"))?;
            let permille = |v: &str| -> Result<u16, String> {
                let n: u16 = v.parse().map_err(|_| format!("bad rate {v:?} in {part:?}"))?;
                if n > 1000 {
                    return Err(format!("rate {n} in {part:?} exceeds 1000 per-mille"));
                }
                Ok(n)
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "torn" => plan.torn_permille = permille(value)?,
                "shortread" => plan.short_read_permille = permille(value)?,
                "enospc" => plan.enospc_permille = permille(value)?,
                "eio" => plan.eio_permille = permille(value)?,
                "renamefail" => plan.rename_fail_permille = permille(value)?,
                "dropfsync" => plan.drop_fsync_permille = permille(value)?,
                "pin" => {
                    let fields: Vec<&str> = value.split(':').collect();
                    let (op, substr, fault, count) = match fields.as_slice() {
                        [op, substr, fault] => (*op, *substr, *fault, 1),
                        [op, substr, fault, count] => (
                            *op,
                            *substr,
                            *fault,
                            count.parse().map_err(|_| format!("bad pin count {count:?}"))?,
                        ),
                        _ => return Err(format!("pin {value:?} is not op:substr:fault[:count]")),
                    };
                    let op = OpKind::parse(op).ok_or_else(|| format!("unknown pin op {op:?}"))?;
                    let fault = FaultKind::parse(fault)
                        .ok_or_else(|| format!("unknown pin fault {fault:?}"))?;
                    plan.pin(op, substr, fault, count);
                }
                other => return Err(format!("unknown fault-spec key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// The faults this plan can draw for one operation class, with their
    /// rates, in a fixed priority order (first threshold crossed wins).
    fn lanes(&self, op: OpKind) -> [(FaultKind, u16); 3] {
        match op {
            OpKind::Read => [
                (FaultKind::Eio, self.eio_permille),
                (FaultKind::ShortRead, self.short_read_permille),
                (FaultKind::ShortRead, 0),
            ],
            OpKind::Write => [
                (FaultKind::TornWrite, self.torn_permille),
                (FaultKind::Enospc, self.enospc_permille),
                (FaultKind::RenameFail, self.rename_fail_permille),
            ],
            OpKind::Append => [
                (FaultKind::TornWrite, self.torn_permille),
                (FaultKind::Enospc, self.enospc_permille),
                (FaultKind::Eio, self.eio_permille),
            ],
            OpKind::Rename => [
                (FaultKind::RenameFail, self.rename_fail_permille),
                (FaultKind::Eio, self.eio_permille),
                (FaultKind::Eio, 0),
            ],
            OpKind::Remove => {
                [(FaultKind::Eio, self.eio_permille), (FaultKind::Eio, 0), (FaultKind::Eio, 0)]
            }
        }
    }

    /// Secondary lanes for atomic writes: EIO and dropped fsync draw on
    /// independent rolls so their rates compose with the primary lanes.
    fn draw(&self, op: OpKind, path: &Path, counter: u64) -> Option<FaultKind> {
        let text = path.to_string_lossy();
        for pin in &self.pins {
            if pin.op == op && text.contains(&pin.substr) {
                let taken = pin
                    .remaining
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1));
                if taken.is_ok() {
                    return Some(pin.fault);
                }
            }
        }
        let roll = mix64(self.seed ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 1000;
        let mut floor = 0u64;
        for (fault, rate) in self.lanes(op) {
            let ceil = floor + rate as u64;
            if (floor..ceil).contains(&roll) {
                return Some(fault);
            }
            floor = ceil;
        }
        if op == OpKind::Write {
            // Independent rolls for the write-path faults that do not fit
            // the three primary lanes.
            let roll2 = mix64(self.seed ^ counter.wrapping_mul(0xD6E8_FEB8_6659_FD93)) % 1000;
            if roll2 < self.eio_permille as u64 {
                return Some(FaultKind::Eio);
            }
            if roll2 < (self.eio_permille + self.drop_fsync_permille) as u64 {
                return Some(FaultKind::DropFsync);
            }
        }
        None
    }
}

/// splitmix64 finalizer — the same avalanche the cache keys use.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct Inner {
    plan: Option<FaultPlan>,
    ops: AtomicU64,
    injected: AtomicU64,
}

/// A cloneable filesystem handle; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct Vfs {
    inner: Arc<Inner>,
}

impl Vfs {
    /// The pass-through filesystem: no plan, no faults, no overhead
    /// beyond one atomic increment per operation.
    pub fn real() -> Vfs {
        Vfs::default()
    }

    /// A filesystem that rolls every operation against `plan`.
    pub fn faulty(plan: FaultPlan) -> Vfs {
        Vfs { inner: Arc::new(Inner { plan: Some(plan), ..Inner::default() }) }
    }

    /// Whether this handle carries a fault plan at all.
    pub fn is_faulty(&self) -> bool {
        self.inner.plan.is_some()
    }

    /// Storage operations performed through this handle.
    pub fn ops(&self) -> u64 {
        self.inner.ops.load(Ordering::Acquire)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::Acquire)
    }

    fn roll(&self, op: OpKind, path: &Path) -> Option<FaultKind> {
        let counter = self.inner.ops.fetch_add(1, Ordering::AcqRel);
        let fault = self.inner.plan.as_ref()?.draw(op, path, counter)?;
        self.inner.injected.fetch_add(1, Ordering::AcqRel);
        Some(fault)
    }

    /// Read a whole file. A short-read fault silently returns a
    /// truncated prefix — callers must verify checksums, not trust
    /// length; an EIO fault errors. A genuinely missing file reports
    /// `NotFound` untouched, so cold misses never masquerade as faults.
    pub fn read_to_string(&self, path: &Path) -> std::io::Result<String> {
        let fault = self.roll(OpKind::Read, path);
        if let Some(FaultKind::Eio) = fault {
            return Err(FaultKind::Eio.error());
        }
        let text = std::fs::read_to_string(path)?;
        if let Some(FaultKind::ShortRead) = fault {
            let mut cut = text.len() / 2;
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            return Ok(text[..cut].to_string());
        }
        Ok(text)
    }

    /// Publish `contents` at `path` atomically: unique temp sibling,
    /// fsync, rename. This is the runner's one way to create or replace
    /// a durable file, and the operation every write-path fault family
    /// targets — including the torn-write shape where the *damaged* temp
    /// file is renamed into place (exactly what a crash between the
    /// partial write and the rename leaves behind).
    pub fn write_atomic(&self, path: &Path, contents: &str) -> std::io::Result<()> {
        let parent =
            path.parent().ok_or_else(|| std::io::Error::other("write path has no parent"))?;
        std::fs::create_dir_all(parent)?;
        let tmp = crate::cache::unique_tmp(path);
        match self.roll(OpKind::Write, path) {
            Some(FaultKind::Eio) => Err(FaultKind::Eio.error()),
            Some(FaultKind::TornWrite) => {
                let _ = std::fs::write(&tmp, &contents.as_bytes()[..contents.len() / 2]);
                // The torn bytes are published: this is the crash window
                // between a partial write and the rename, surfaced as a
                // detectable (checksummed) torn entry.
                let _ = std::fs::rename(&tmp, path);
                Err(FaultKind::TornWrite.error())
            }
            Some(FaultKind::Enospc) => {
                let _ = std::fs::write(&tmp, &contents.as_bytes()[..contents.len() / 2]);
                let _ = std::fs::remove_file(&tmp);
                Err(FaultKind::Enospc.error())
            }
            Some(FaultKind::RenameFail) => {
                std::fs::write(&tmp, contents)?;
                let _ = std::fs::remove_file(&tmp);
                Err(FaultKind::RenameFail.error())
            }
            Some(FaultKind::DropFsync) => {
                // Silent: the bytes land without the durability barrier.
                // Nothing to observe unless the machine dies before the
                // kernel flushes — which fsck and checksums then catch.
                std::fs::write(&tmp, contents)?;
                publish(&tmp, path)
            }
            Some(FaultKind::ShortRead) | None => {
                let mut file = std::fs::File::create(&tmp)?;
                file.write_all(contents.as_bytes())?;
                if let Err(e) = file.sync_all() {
                    drop(file);
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e);
                }
                drop(file);
                publish(&tmp, path)
            }
        }
    }

    /// Append one line to an open log handle. `tag` is the log's path,
    /// used only for fault targeting. A torn-write or ENOSPC fault lands
    /// half the line (a real torn tail for the tolerant loaders and the
    /// sweepers to handle) and errors.
    pub fn append_line(
        &self,
        file: &mut std::fs::File,
        tag: &Path,
        line: &str,
    ) -> std::io::Result<()> {
        match self.roll(OpKind::Append, tag) {
            Some(FaultKind::Eio) => Err(FaultKind::Eio.error()),
            Some(fault @ (FaultKind::TornWrite | FaultKind::Enospc)) => {
                let _ = file.write_all(&line.as_bytes()[..line.len() / 2]);
                let _ = file.flush();
                Err(fault.error())
            }
            _ => {
                file.write_all(line.as_bytes())?;
                file.flush()
            }
        }
    }

    /// Rename a file (non-atomic-publish uses).
    pub fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        match self.roll(OpKind::Rename, to) {
            Some(FaultKind::Eio) => Err(FaultKind::Eio.error()),
            Some(FaultKind::RenameFail) => Err(FaultKind::RenameFail.error()),
            _ => std::fs::rename(from, to),
        }
    }

    /// Remove a file.
    pub fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        match self.roll(OpKind::Remove, path) {
            Some(FaultKind::Eio) => Err(FaultKind::Eio.error()),
            _ => std::fs::remove_file(path),
        }
    }
}

/// The publish half of an atomic write; on rename failure the temp file
/// is cleaned up so it cannot strand.
fn publish(tmp: &Path, path: &Path) -> std::io::Result<()> {
    if let Err(e) = std::fs::rename(tmp, path) {
        let _ = std::fs::remove_file(tmp);
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("smi-lab-vfs-test-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn real_vfs_round_trips_and_counts_ops() {
        let dir = tmp_dir("real");
        let vfs = Vfs::real();
        let path = dir.join("sub").join("file.json");
        vfs.write_atomic(&path, "payload\n").expect("write");
        assert_eq!(vfs.read_to_string(&path).expect("read"), "payload\n");
        assert_eq!(vfs.injected(), 0);
        assert_eq!(vfs.ops(), 2);
        vfs.remove_file(&path).expect("remove");
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_stays_not_found_even_under_full_fault_rates() {
        let dir = tmp_dir("notfound");
        let plan = FaultPlan { short_read_permille: 1000, ..FaultPlan::default() };
        let vfs = Vfs::faulty(plan);
        let err = vfs.read_to_string(&dir.join("absent")).expect_err("missing file");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound, "misses must not become faults");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_torn_write_publishes_the_damaged_file_and_errors() {
        let dir = tmp_dir("torn");
        let mut plan = FaultPlan::default();
        plan.pin(OpKind::Write, "victim", FaultKind::TornWrite, 1);
        let vfs = Vfs::faulty(plan);
        let path = dir.join("victim.json");
        let err = vfs.write_atomic(&path, "0123456789").expect_err("injected torn write");
        assert!(err.to_string().contains("torn write"));
        assert_eq!(std::fs::read_to_string(&path).expect("torn file published"), "01234");
        assert_eq!(vfs.injected(), 1);
        // The pin is spent: the next write succeeds whole.
        vfs.write_atomic(&path, "0123456789").expect("pin exhausted");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "0123456789");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_enospc_and_rename_fail_leave_no_file_and_no_tmp() {
        let dir = tmp_dir("enospc");
        for fault in [FaultKind::Enospc, FaultKind::RenameFail] {
            let mut plan = FaultPlan::default();
            plan.pin(OpKind::Write, "victim", fault, 1);
            let vfs = Vfs::faulty(plan);
            let path = dir.join("victim.json");
            let _ = std::fs::remove_file(&path);
            assert!(vfs.write_atomic(&path, "0123456789").is_err());
            assert!(!path.exists(), "{fault:?} must not publish");
            let leftovers = std::fs::read_dir(&dir)
                .expect("dir")
                .flatten()
                .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
                .count();
            assert_eq!(leftovers, 0, "{fault:?} must not strand a temp file");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_read_truncates_and_append_faults_tear_the_tail() {
        let dir = tmp_dir("short");
        let path = dir.join("log.jsonl");
        std::fs::write(&path, "0123456789").expect("seed file");
        let mut plan = FaultPlan::default();
        plan.pin(OpKind::Read, "log", FaultKind::ShortRead, 1);
        plan.pin(OpKind::Append, "log", FaultKind::Enospc, 1);
        let vfs = Vfs::faulty(plan);
        assert_eq!(vfs.read_to_string(&path).expect("short read"), "01234");
        assert_eq!(vfs.read_to_string(&path).expect("pin spent"), "0123456789");
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).expect("open");
        assert!(vfs.append_line(&mut file, &path, "ABCDEFGH").is_err());
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "0123456789ABCD");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_draws_replay_identically() {
        let spec = "seed=7,torn=50,enospc=50,eio=30,renamefail=40,dropfsync=60,shortread=80";
        let sequence = |spec: &str| -> Vec<Option<FaultKind>> {
            let plan = FaultPlan::parse(spec).expect("parse");
            (0..200u64)
                .map(|i| {
                    plan.draw(
                        if i % 2 == 0 { OpKind::Write } else { OpKind::Read },
                        Path::new("x"),
                        i,
                    )
                })
                .collect()
        };
        assert_eq!(sequence(spec), sequence(spec), "same seed, same fault sequence");
        let other =
            sequence("seed=8,torn=50,enospc=50,eio=30,renamefail=40,dropfsync=60,shortread=80");
        assert_ne!(sequence(spec), other, "different seeds decorrelate");
        assert!(sequence(spec).iter().any(Option::is_some), "rates this high must fire");
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(FaultPlan::parse("").expect("empty spec").pins.is_empty());
        assert!(FaultPlan::parse("torn=20,pin=append:journal:enospc:2").is_ok());
        for bad in [
            "torn",
            "torn=abc",
            "torn=1001",
            "bogus=1",
            "pin=append:journal",
            "pin=fly:journal:enospc",
            "pin=append:journal:gremlins",
            "pin=append:journal:enospc:many",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
