//! Experiment design: adaptive sampling with a deterministic stopping
//! rule and campaign-level power accounting.
//!
//! Hunold & Carpen-Amarie ("MPI Benchmarking Revisited") show that
//! fixed-repetition mean-of-N benchmarking misleads: low-variance cells
//! waste repetitions while high-variance cells report unstable means
//! with no warning. This module is the lab's answer (DESIGN.md §15):
//!
//! * a cell declares a [`SampleDesign`] — at least `min_reps`
//!   repetitions, at most `max_reps`, stop as soon as the Student-t
//!   95 % confidence interval on the mean is relatively tighter than
//!   `target_rel_halfwidth`;
//! * [`run_adaptive`] is the **single** sampling loop both execution
//!   paths share. It runs *inside* the cell's work closure, so the
//!   in-process pool and the `--isolate` worker subprocess execute the
//!   identical decision sequence by construction and cannot drift;
//! * the loop's verdict ([`AdaptiveRun`]) is rendered into the cell
//!   payload's conventional `"stats"` object, and
//!   [`campaign_stats`] folds those per-cell blocks into the manifest's
//!   schema-6 `stats` section with the campaign-level power check:
//!   any cell that exhausted `max_reps` without reaching its target is
//!   named in `under_powered` — its conclusion rests on a wider
//!   interval than the design asked for.
//!
//! Everything here is a pure function of the cell identity and the
//! declared design: repetition seeds come from `SimRng::from_path`,
//! the bootstrap resampling from a labelled child generator, and no
//! wall-clock value ever reaches a decision or a payload byte.

use jsonio::Json;
use sim_core::rng::SimRng;
use sim_core::stats::{bootstrap_ci_mean, t_ci_mean, Ci};

/// Bootstrap resamples drawn per cell for the percentile interval —
/// fixed, so the interval is part of the deterministic payload.
pub const BOOTSTRAP_RESAMPLES: u32 = 200;

/// An adaptive sampling plan for one cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleDesign {
    /// Repetitions always executed before the stopping rule is
    /// consulted (at least 2 — a CI needs a variance estimate).
    pub min_reps: u32,
    /// Hard repetition ceiling; reaching it without meeting the target
    /// marks the cell under-powered.
    pub max_reps: u32,
    /// Stop once the 95 % CI half-width divided by the mean is at or
    /// below this (e.g. `0.05` = ±5 %).
    pub target_rel_halfwidth: f64,
}

impl SampleDesign {
    /// Check the plan is executable: `2 ≤ min_reps ≤ max_reps` and a
    /// positive, finite target.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_reps < 2 {
            return Err(format!(
                "sample design: min_reps {} < 2 (a CI needs variance)",
                self.min_reps
            ));
        }
        if self.max_reps < self.min_reps {
            return Err(format!(
                "sample design: max_reps {} < min_reps {}",
                self.max_reps, self.min_reps
            ));
        }
        if !(self.target_rel_halfwidth > 0.0 && self.target_rel_halfwidth.is_finite()) {
            return Err(format!(
                "sample design: target relative half-width {} must be positive and finite",
                self.target_rel_halfwidth
            ));
        }
        Ok(())
    }

    /// The design rendered as canonical cell parameters. Embedding this
    /// in `CellSpec::params` makes the plan part of the cache identity:
    /// an adaptive cell and a fixed-design cell (or two different
    /// plans) can never satisfy each other from cache.
    pub fn params_json(&self) -> Json {
        Json::obj(vec![
            ("min_reps", Json::U64(self.min_reps as u64)),
            ("max_reps", Json::U64(self.max_reps as u64)),
            ("ci_target", Json::F64(self.target_rel_halfwidth)),
        ])
    }
}

/// The verdict of one adaptive sampling loop.
#[derive(Clone, Debug)]
pub struct AdaptiveRun {
    /// Every repetition measured, in execution order.
    pub samples: Vec<f64>,
    /// Exact-sum mean of the samples.
    pub mean: f64,
    /// Student-t 95 % confidence interval on the mean.
    pub ci: Ci,
    /// Seeded-bootstrap 95 % percentile interval on the mean.
    pub boot: Ci,
    /// The target the stopping rule compared against.
    pub target: f64,
    /// The CI met the target (at any n ≤ max_reps).
    pub met_target: bool,
    /// The rule fired before `max_reps` — repetitions were saved.
    pub stopped_early: bool,
    /// `max_reps` was spent without meeting the target: the cell is
    /// under-powered and the power check will flag it.
    pub exhausted: bool,
}

impl AdaptiveRun {
    /// Repetitions actually executed.
    pub fn n(&self) -> u32 {
        self.samples.len() as u32
    }

    /// The conventional `"stats"` object embedded in an adaptive cell's
    /// payload — what [`campaign_stats`] and the manifest consume.
    /// Non-finite values (an unknowable interval) render as `null`.
    pub fn stats_json(&self) -> Json {
        Json::obj(vec![
            ("n", Json::U64(self.samples.len() as u64)),
            ("mean", finite_or_null(self.mean)),
            ("ci_lo", finite_or_null(self.ci.lo)),
            ("ci_hi", finite_or_null(self.ci.hi)),
            ("boot_lo", finite_or_null(self.boot.lo)),
            ("boot_hi", finite_or_null(self.boot.hi)),
            ("rel_half_width", finite_or_null(self.ci.rel_half_width())),
            ("target", Json::F64(self.target)),
            ("met_target", Json::Bool(self.met_target)),
            ("stopped_early", Json::Bool(self.stopped_early)),
            ("exhausted", Json::Bool(self.exhausted)),
        ])
    }
}

fn finite_or_null(x: f64) -> Json {
    if x.is_finite() {
        Json::F64(x)
    } else {
        Json::Null
    }
}

/// Run one cell's adaptive sampling loop: repetitions are measured by
/// `rep(i)` (pure in `i` — repetition seeds derive from the cell
/// identity, never from how many repetitions ran before) until the
/// t-based CI meets the design target or `max_reps` is spent.
///
/// This function is the shared sampling loop of the tentpole: it is
/// called from inside the cell's work closure, so the in-process pool
/// and the `--isolate` worker execute byte-identical decision sequences
/// — there is no second implementation to drift.
///
/// `bootstrap_rng` seeds the percentile bootstrap on the final sample;
/// pass a generator derived from the cell identity.
pub fn run_adaptive<E>(
    design: &SampleDesign,
    bootstrap_rng: &mut SimRng,
    mut rep: impl FnMut(u32) -> Result<f64, E>,
) -> Result<AdaptiveRun, E> {
    let mut samples: Vec<f64> = Vec::with_capacity(design.min_reps as usize);
    let mut met_target = false;
    loop {
        let n = samples.len() as u32;
        if n >= design.min_reps
            && t_ci_mean(&samples).rel_half_width() <= design.target_rel_halfwidth
        {
            met_target = true;
            break;
        }
        if n >= design.max_reps {
            break;
        }
        samples.push(rep(n)?);
    }
    let ci = t_ci_mean(&samples);
    let boot = bootstrap_ci_mean(&samples, BOOTSTRAP_RESAMPLES, bootstrap_rng);
    let mut moments = sim_core::stats::Moments::new();
    for &x in &samples {
        moments.push(x);
    }
    let n = samples.len() as u32;
    Ok(AdaptiveRun {
        mean: moments.mean(),
        ci,
        boot,
        target: design.target_rel_halfwidth,
        met_target,
        stopped_early: met_target && n < design.max_reps,
        exhausted: !met_target,
        samples,
    })
}

/// Fold the per-cell `"stats"` payload blocks of a drained campaign
/// into the manifest's schema-6 `stats` section, including the
/// campaign-level power check. Returns `Json::Null` when no cell
/// declared a sampling design (fixed-design campaigns).
pub fn campaign_stats(outcomes: &[crate::CellOutcome]) -> Json {
    let mut cells = Vec::new();
    let mut met = 0u64;
    let mut stopped_early = 0u64;
    let mut exhausted = 0u64;
    let mut under_powered = Vec::new();
    for o in outcomes {
        let stats = match o.payload().and_then(|p| p.get("stats")) {
            Some(s) => s,
            None => continue,
        };
        let flag = |key: &str| stats.get(key).and_then(Json::as_bool) == Some(true);
        if flag("met_target") {
            met += 1;
        } else {
            under_powered.push(Json::Str(o.spec.cell.clone()));
        }
        if flag("stopped_early") {
            stopped_early += 1;
        }
        if flag("exhausted") {
            exhausted += 1;
        }
        let mut entry = vec![("cell".to_string(), Json::Str(o.spec.cell.clone()))];
        if let Json::Obj(fields) = stats {
            entry.extend(fields.iter().cloned());
        }
        cells.push(Json::Obj(entry));
    }
    if cells.is_empty() {
        return Json::Null;
    }
    let power = if under_powered.is_empty() { "ok" } else { "under-powered" };
    Json::obj(vec![
        ("designed", Json::U64(cells.len() as u64)),
        ("met_target", Json::U64(met)),
        ("stopped_early", Json::U64(stopped_early)),
        ("exhausted", Json::U64(exhausted)),
        ("power", Json::Str(power.to_string())),
        ("under_powered", Json::Arr(under_powered)),
        ("cells", Json::Arr(cells)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cache, CellOutcome, CellSpec, CellValue};

    fn design(min: u32, max: u32, target: f64) -> SampleDesign {
        SampleDesign { min_reps: min, max_reps: max, target_rel_halfwidth: target }
    }

    #[test]
    fn validate_rejects_degenerate_plans() {
        assert!(design(2, 8, 0.05).validate().is_ok());
        assert!(design(1, 8, 0.05).validate().is_err(), "min_reps < 2");
        assert!(design(4, 3, 0.05).validate().is_err(), "max < min");
        assert!(design(2, 8, 0.0).validate().is_err(), "zero target");
        assert!(design(2, 8, f64::NAN).validate().is_err(), "NaN target");
    }

    #[test]
    fn constant_cell_stops_at_min_reps() {
        let d = design(3, 20, 0.05);
        let mut rng = SimRng::new(7);
        let run: AdaptiveRun =
            run_adaptive::<()>(&d, &mut rng, |_| Ok(4.5)).expect("infallible reps");
        assert_eq!(run.n(), 3, "a zero-variance cell needs exactly min_reps");
        assert!(run.met_target);
        assert!(run.stopped_early);
        assert!(!run.exhausted);
        assert_eq!(run.mean, 4.5);
        assert_eq!(run.ci, Ci::point(4.5));
    }

    #[test]
    fn noisy_cell_exhausts_the_budget() {
        let d = design(2, 6, 0.001);
        let mut rng = SimRng::new(7);
        // Alternating 1/2: the CI can never be ±0.1 % tight.
        let run = run_adaptive::<()>(&d, &mut rng, |i| Ok(if i % 2 == 0 { 1.0 } else { 2.0 }))
            .expect("infallible reps");
        assert_eq!(run.n(), 6, "budget fully spent");
        assert!(!run.met_target);
        assert!(!run.stopped_early);
        assert!(run.exhausted);
        assert!(run.ci.contains(run.mean));
        assert!(run.boot.contains(run.mean));
    }

    #[test]
    fn adaptive_loop_is_deterministic() {
        let d = design(2, 12, 0.02);
        let measure = |i: u32| Ok::<f64, ()>(10.0 + (i as f64 * 0.77).sin() * 0.1);
        let a = run_adaptive(&d, &mut SimRng::new(99), measure).expect("ok");
        let b = run_adaptive(&d, &mut SimRng::new(99), measure).expect("ok");
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.stats_json().to_string(), b.stats_json().to_string());
    }

    #[test]
    fn rep_errors_propagate() {
        let d = design(2, 6, 0.05);
        let mut rng = SimRng::new(1);
        let out = run_adaptive(&d, &mut rng, |i| if i == 1 { Err("boom") } else { Ok(1.0) });
        assert_eq!(out.err(), Some("boom"));
    }

    fn outcome_with_payload(cell: &str, payload: Json) -> CellOutcome {
        CellOutcome {
            spec: CellSpec {
                experiment: "t".into(),
                cell: cell.into(),
                params: Json::Null,
                seed: 1,
                reps: 1,
            },
            key: cache::CacheKey(0, 0),
            result: Ok(CellValue { payload, cached: false, attempts: 1, micros: 0 }),
        }
    }

    #[test]
    fn campaign_stats_folds_blocks_and_flags_under_power() {
        let d = design(2, 4, 0.5);
        let mut rng = SimRng::new(3);
        let good = run_adaptive::<()>(&d, &mut rng, |_| Ok(2.0)).expect("ok");
        let tight = design(2, 3, 1e-9);
        let bad = run_adaptive::<()>(&tight, &mut rng, |i| Ok(1.0 + i as f64)).expect("ok");
        let outcomes = vec![
            outcome_with_payload("a", Json::obj(vec![("stats", good.stats_json())])),
            outcome_with_payload("plain", Json::obj(vec![("measured", Json::Arr(vec![]))])),
            outcome_with_payload("b", Json::obj(vec![("stats", bad.stats_json())])),
        ];
        let stats = campaign_stats(&outcomes);
        assert_eq!(stats.get("designed").and_then(Json::as_u64), Some(2));
        assert_eq!(stats.get("met_target").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("exhausted").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("power").and_then(Json::as_str), Some("under-powered"));
        let under = stats.get("under_powered").and_then(Json::as_array).expect("list");
        assert_eq!(under, &[Json::Str("b".into())]);
        let cells = stats.get("cells").and_then(Json::as_array).expect("cells");
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("cell").and_then(Json::as_str), Some("a"));
        assert_eq!(cells[0].get("n").and_then(Json::as_u64), Some(2));
        // Fixed-design campaigns render no stats section at all.
        assert_eq!(campaign_stats(&outcomes[1..2]), Json::Null);
    }
}
