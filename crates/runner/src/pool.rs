//! A work-stealing thread pool over `std::thread` for a *fixed* set of
//! jobs, which keeps termination trivial: a shared remaining-count tells
//! every worker when the pool has drained.
//!
//! Jobs are distributed round-robin across per-worker deques up front;
//! each worker pops from the front of its own deque (locality, cheap)
//! and steals from the *back* of a sibling's deque when it runs dry, so
//! long-running cells migrate away from loaded workers. Results land in
//! their submission slot — output order is input order, independent of
//! interleaving, which is what makes `--jobs N` bit-identical to serial.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run every job on `workers` threads and return the results in job
/// order. `workers` is clamped to `[1, jobs.len()]`; with one worker the
/// calling thread runs everything (no spawn overhead, exact serial path).
pub fn run_jobs<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }

    let deques: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        lock_clean(&deques[i % workers]).push_back((i, job));
    }
    let remaining = AtomicUsize::new(n);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let remaining = &remaining;
            let results = &results;
            scope.spawn(move || {
                while remaining.load(Ordering::Acquire) > 0 {
                    let task = pop_or_steal(deques, w);
                    match task {
                        Some((idx, job)) => {
                            // Decrement on unwind too, so a panicking job
                            // can't strand the other workers in the drain
                            // loop; the scope re-raises the panic on join.
                            struct Dec<'a>(&'a AtomicUsize);
                            impl Drop for Dec<'_> {
                                fn drop(&mut self) {
                                    self.0.fetch_sub(1, Ordering::AcqRel);
                                }
                            }
                            let _dec = Dec(remaining);
                            let value = job();
                            *lock_clean(&results[idx]) = Some(value);
                        }
                        None => {
                            // Everything is claimed but some jobs are still
                            // in flight on other workers; nothing to steal.
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            let value = slot.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner());
            // smi-lint: allow(no-panic): the scope above re-raises any job
            // panic before we get here, so every surviving slot is filled.
            value.expect("every job ran")
        })
        .collect()
}

/// Lock a mutex, recovering the data from a poisoned lock. The pool's
/// drain counter is panic-safe (see `Dec`), so a panicking job must not
/// take the whole pool down with a poisoned-lock panic of its own.
/// (`pub(crate)`: the isolated-mode supervisor shares the discipline.)
pub(crate) fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Pop from our own deque, else steal from the busiest sibling's tail.
fn pop_or_steal<F>(deques: &[Mutex<VecDeque<(usize, F)>>], me: usize) -> Option<(usize, F)> {
    if let Some(task) = lock_clean(&deques[me]).pop_front() {
        return Some(task);
    }
    for offset in 1..deques.len() {
        let victim = (me + offset) % deques.len();
        if let Some(task) = lock_clean(&deques[victim]).pop_back() {
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_submission_order() {
        for workers in [1, 2, 4, 8] {
            let jobs: Vec<_> = (0..50u64).map(|i| move || i * i).collect();
            let out = run_jobs(jobs, workers);
            assert_eq!(out, (0..50u64).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let jobs: Vec<_> = (0..200)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let _ = run_jobs(jobs, 8);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn uneven_jobs_drain_via_stealing() {
        // One long job pinned to worker 0's deque plus many short ones:
        // with stealing, the short jobs complete on other workers.
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..40u64)
            .map(|i| {
                Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                    }
                    i
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let out = run_jobs(jobs, 4);
        assert_eq!(out, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_oversized_worker_counts() {
        let empty: Vec<fn() -> u64> = Vec::new();
        assert!(run_jobs(empty, 8).is_empty());
        let jobs: Vec<_> = (0..3u64).map(|i| move || i).collect();
        assert_eq!(run_jobs(jobs, 64), vec![0, 1, 2]);
    }

    #[test]
    fn panics_in_jobs_propagate() {
        crate::chaos::quiet_injected_panics();
        let result = std::panic::catch_unwind(|| {
            let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> =
                vec![Box::new(|| 1), Box::new(|| panic!("chaos: cell failed"))];
            run_jobs(jobs, 2)
        });
        assert!(result.is_err());
    }

    #[test]
    fn panicking_job_does_not_strand_the_pool() {
        crate::chaos::quiet_injected_panics();
        // The drain counter must keep decrementing through an unwinding
        // job: every *other* job still runs to completion and the scope
        // joins (re-raising the panic) instead of hanging forever on
        // workers spinning over a count that never reaches zero.
        let completed = AtomicU64::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..20u64)
                .map(|i| {
                    let completed = &completed;
                    Box::new(move || {
                        if i == 7 {
                            panic!("chaos: injected job fault");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                        i
                    }) as Box<dyn FnOnce() -> u64 + Send>
                })
                .collect();
            run_jobs(jobs, 4)
        }));
        assert!(result.is_err(), "the scope re-raises the job panic on join");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            19,
            "all surviving jobs drain despite the panicking one"
        );
    }

    #[test]
    fn lock_clean_recovers_poisoned_mutexes() {
        crate::chaos::quiet_injected_panics();
        let shared = Mutex::new(41u64);
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.lock().unwrap();
            panic!("chaos: poison while holding the lock");
        }));
        assert!(poison.is_err());
        assert!(shared.lock().is_err(), "the mutex must actually be poisoned");
        *lock_clean(&shared) += 1;
        assert_eq!(*lock_clean(&shared), 42, "lock_clean reads and writes through poison");
    }
}
