//! Shared fixture cells for the isolation tests and the `chaos-worker`
//! fixture binary. Compiled only for tests and `--features chaos`.
//!
//! The cells are deliberately tiny and *deterministic in their work
//! units*: cell `c{i}` "spends" `(i + 1) * 100` units, reported through
//! [`fixture_probe`] exactly the way the real engine reports
//! `events_popped` through `sim_core::perf::take()`. That makes
//! deadline verdicts a pure function of cell identity and budget — a
//! 650-unit budget deadlines `c6` (700) and `c7` (800) on every run,
//! in-process or isolated, which is what the golden deadline fixture
//! asserts.

use crate::{Cell, CellSpec, EnginePerf, PerfProbe};
use jsonio::Json;
use std::cell::Cell as StdCell;
use std::sync::Arc;

thread_local! {
    /// Work units "spent" by the most recent fixture cell on this
    /// thread, harvested (and reset) by [`fixture_probe`] — the same
    /// take-on-read discipline as the engine's thread-local counters.
    static UNITS: StdCell<u64> = const { StdCell::new(0) };
}

/// A perf probe over the fixture counter, shaped like the engine probe
/// the CLI installs: harvest resets the counter so each cell's units
/// are attributed once.
pub fn fixture_probe() -> PerfProbe {
    Arc::new(|| EnginePerf { events_popped: UNITS.with(|u| u.replace(0)), queue_peak: 0, runs: 1 })
}

/// The spec for fixture cell `i` — identity only, shared between the
/// supervisor side (which queues specs) and the worker side (which must
/// rebuild the identical catalog).
pub fn fixture_spec(i: u64, seed: u64) -> CellSpec {
    CellSpec {
        experiment: "iso-fixture".into(),
        cell: format!("c{i}"),
        params: Json::obj(vec![("i", Json::U64(i))]),
        seed,
        reps: 1,
    }
}

/// `n` deterministic fixture cells. Cell `c{i}` produces
/// `{"value": i*10, "units": (i+1)*100}` and books its units into the
/// thread-local counter for [`fixture_probe`] to harvest.
pub fn fixture_cells(n: u64, seed: u64) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            Cell::new(fixture_spec(i, seed), move || {
                let units = (i + 1) * 100;
                UNITS.with(|u| u.set(units));
                Json::obj(vec![("value", Json::U64(i * 10)), ("units", Json::U64(units))])
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_are_deterministic_in_cell_identity() {
        let cells = fixture_cells(8, 3);
        assert_eq!(cells.len(), 8);
        let probe = fixture_probe();
        let payload = (cells[6].work)().expect("fixture cells are infallible");
        assert_eq!(payload.get("units").and_then(Json::as_u64), Some(700));
        assert_eq!(probe().events_popped, 700, "probe harvests the booked units");
        assert_eq!(probe().events_popped, 0, "harvest resets the counter");
    }
}
