//! Exclusive campaign lock: one running campaign per (cache dir, label).
//!
//! Two concurrent campaigns with the same label share a journal file and
//! a manifest path; interleaved journal appends from two supervisors
//! would corrupt the resume account silently. The lock makes that race a
//! *typed, immediate* failure instead: the second campaign gets
//! [`LockHeld`] before touching any shared state, and the CLI turns it
//! into a failed exit. Campaigns with different labels (or different
//! cache dirs) stay independent — their journals are disjoint, and the
//! content-addressed store is safe under concurrent writers by
//! construction (atomic tmp+rename stores, per-label indexes).
//!
//! The lock is a `create_new` file at `<cache>/journal/<label>.lock`
//! containing the holder's pid. Dropping the guard removes it. A holder
//! that died without cleanup (SIGKILL — exactly the crash this runner is
//! built to survive) leaves a *stale* lock; acquisition detects
//! staleness by checking `/proc/<pid>` where procfs exists (and by an
//! own-pid check everywhere), breaks the stale lock, and retries once —
//! so `--resume` after a kill never needs manual lockfile surgery.
//! Breaking is never silent: the broken lock's holder pid and age are
//! returned as a [`BrokenLock`] and land in the run manifest as the
//! `lock_broken` note.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The typed contention failure: another live campaign holds the lock.
#[derive(Debug)]
pub struct LockHeld {
    /// The lock file path.
    pub path: PathBuf,
    /// The holder's pid as recorded in the lock file, if readable.
    pub holder_pid: Option<u64>,
}

impl std::fmt::Display for LockHeld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.holder_pid {
            Some(pid) => write!(
                f,
                "campaign lock {} is held by live process {pid}; \
                 wait for it or remove the file if it is wrong",
                self.path.display()
            ),
            None => write!(f, "campaign lock {} is held by another process", self.path.display()),
        }
    }
}

/// The account of a stale lock that acquisition broke: who held it and
/// how old it was. Surfaced in the run manifest so a broken lock is an
/// audited event, never a silent one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrokenLock {
    /// The dead (or torn) holder's pid, if the lock file recorded one.
    pub holder_pid: Option<u64>,
    /// Age of the lock file in whole seconds at break time, if the
    /// filesystem reports mtimes.
    pub age_seconds: Option<u64>,
}

/// The result of a successful (non-contended) acquisition attempt.
#[derive(Debug)]
pub struct Acquired {
    /// The held lock, or `None` if the filesystem refused to create one
    /// (the campaign proceeds unlocked and degraded).
    pub guard: Option<CampaignLock>,
    /// The stale lock that had to be broken on the way in, if any.
    pub broke: Option<BrokenLock>,
}

/// A held campaign lock; dropping it releases the lock file.
#[derive(Debug)]
pub struct CampaignLock {
    path: PathBuf,
}

impl CampaignLock {
    /// Path of the lock guarding a campaign label under a cache root
    /// (next to the journal it protects, same label sanitization).
    pub fn lock_path(cache_dir: &Path, label: &str) -> PathBuf {
        cache_dir.join("journal").join(format!("{}.lock", label.replace(['/', ' '], "-")))
    }

    /// Try to take the lock. `Ok` with a guard holds it; `Err` means a
    /// live campaign already does. `Ok` with `guard: None` means the
    /// filesystem refused (unwritable cache root): the campaign proceeds
    /// unlocked, and the same broken filesystem surfaces as counted
    /// store errors — a degraded run, not a wedged one. If a stale lock
    /// was broken on the way in, `broke` carries its account.
    pub fn acquire(cache_dir: &Path, label: &str) -> Result<Acquired, LockHeld> {
        let path = Self::lock_path(cache_dir, label);
        if let Some(parent) = path.parent() {
            if std::fs::create_dir_all(parent).is_err() {
                return Ok(Acquired { guard: None, broke: None });
            }
        }
        // One stale-break retry: if the first attempt loses to a stale
        // lock we break it and try again; losing the *second* race means
        // a genuinely live contender just beat us.
        let mut broke = None;
        for attempt in 0..2 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let _ = writeln!(file, "{}", std::process::id());
                    let _ = file.flush();
                    return Ok(Acquired { guard: Some(CampaignLock { path }), broke });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder_pid = read_holder(&path);
                    if attempt == 0 && is_stale(holder_pid) {
                        broke = Some(BrokenLock { holder_pid, age_seconds: lock_age(&path) });
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    return Err(LockHeld { path, holder_pid });
                }
                Err(_) => return Ok(Acquired { guard: None, broke }),
            }
        }
        // Unreachable: attempt 1 always returns. Kept total for the
        // no-panic discipline.
        Ok(Acquired { guard: None, broke })
    }
}

impl Drop for CampaignLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The pid recorded in a lock file, if the file parses.
fn read_holder(path: &Path) -> Option<u64> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// Age of a lock file in whole seconds, from its mtime.
fn lock_age(path: &Path) -> Option<u64> {
    let mtime = std::fs::metadata(path).ok()?.modified().ok()?;
    // smi-lint: allow(wall-clock): lock age is operator-facing forensics
    // in the manifest, never an input to any deterministic verdict.
    std::time::SystemTime::now().duration_since(mtime).ok().map(|d| d.as_secs())
}

/// Whether a lock can be broken: no parseable pid (torn write), our own
/// pid (a leak within this process — campaigns in one process run
/// sequentially), or a pid that no longer exists where procfs can tell.
fn is_stale(holder_pid: Option<u64>) -> bool {
    let Some(pid) = holder_pid else { return true };
    if pid == std::process::id() as u64 {
        return true;
    }
    let proc_root = Path::new("/proc");
    proc_root.is_dir() && !proc_root.join(pid.to_string()).exists()
}

/// Whether an on-disk lock file is stale (holder dead, own-process leak,
/// or torn pid). Used by `fsck` to report and break abandoned locks with
/// the same verdict the runner itself applies.
pub fn is_stale_lock_file(path: &Path) -> bool {
    is_stale(read_holder(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smi-lab-lockfile-test-{}-{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn acquire(dir: &Path, label: &str) -> Result<Acquired, LockHeld> {
        CampaignLock::acquire(dir, label)
    }

    #[test]
    fn lock_excludes_and_drop_releases() {
        let dir = tmp_dir("basic");
        let first = acquire(&dir, "camp").expect("no contention");
        assert!(first.guard.is_some(), "fs ok");
        assert!(first.broke.is_none(), "fresh lock breaks nothing");
        // Simulate a *different live* holder: overwrite the pid with
        // pid 1 (init — always alive where /proc exists). Without /proc
        // the recorded foreign pid is conservatively treated as live too.
        std::fs::write(CampaignLock::lock_path(&dir, "camp"), "1\n").expect("rewrite pid");
        let held = acquire(&dir, "camp").expect_err("second campaign must fail fast");
        assert_eq!(held.holder_pid, Some(1));
        assert!(held.to_string().contains("held by live process 1"));
        // A different label is a different campaign: no contention.
        let other = acquire(&dir, "other").expect("no contention");
        assert!(other.guard.is_some());
        drop(first);
        let reacquired = acquire(&dir, "camp").expect("released");
        assert!(reacquired.guard.is_some(), "drop must release the lock");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn own_pid_lock_is_stale_and_break_is_recorded() {
        let dir = tmp_dir("own");
        let path = CampaignLock::lock_path(&dir, "camp");
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, format!("{}\n", std::process::id())).expect("plant lock");
        assert!(is_stale_lock_file(&path), "fsck agrees the lock is stale");
        let acq = acquire(&dir, "camp").expect("own leak is stale");
        assert!(acq.guard.is_some(), "a lock leaked by our own process must break");
        let broke = acq.broke.expect("the break must be recorded, not silent");
        assert_eq!(broke.holder_pid, Some(std::process::id() as u64));
        assert!(broke.age_seconds.is_some(), "a just-planted lock still has an mtime age");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_pidless_lock_is_stale() {
        let dir = tmp_dir("torn");
        let path = CampaignLock::lock_path(&dir, "camp");
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, "").expect("plant torn lock");
        let acq = acquire(&dir, "camp").expect("torn lock is stale");
        assert!(acq.guard.is_some());
        assert_eq!(
            acq.broke.map(|b| b.holder_pid),
            Some(None),
            "a torn lock breaks with no recorded holder"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_pid_lock_is_stale_where_procfs_exists() {
        if !Path::new("/proc").is_dir() {
            return;
        }
        let dir = tmp_dir("dead");
        let path = CampaignLock::lock_path(&dir, "camp");
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        // Pid 4194304 exceeds the default Linux pid_max (2^22) and so is
        // never a live process; the SIGKILLed-campaign resume path.
        std::fs::write(&path, "4194304\n").expect("plant dead-holder lock");
        assert!(is_stale_lock_file(&path));
        let acq = acquire(&dir, "camp").expect("dead holder is stale");
        assert!(acq.guard.is_some(), "resume after SIGKILL must not need lockfile surgery");
        assert_eq!(acq.broke.map(|b| b.holder_pid), Some(Some(4194304)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_root_proceeds_unlocked() {
        let dir = tmp_dir("unwritable");
        let file = dir.join("not-a-dir");
        std::fs::write(&file, "x").expect("plant file");
        let acq = acquire(&file, "camp").expect("fs refusal is not contention");
        assert!(acq.guard.is_none(), "broken filesystem degrades, never wedges");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
