//! The supervisor half of process-isolated execution: shard cells
//! across re-spawned worker subprocesses, survive every way a worker
//! can die, and keep the campaign's records byte-identical to an
//! in-process run.
//!
//! ## Supervision tree
//!
//! `run_isolated` owns the campaign. It satisfies cache hits itself
//! (cached payloads never cross a pipe), queues every remaining cell
//! into one shared work queue, and runs one *manager thread per worker
//! slot*. Each manager spawns its worker subprocess (the hidden
//! `smi-lab worker` subcommand), feeds it cells over the
//! length-prefixed frame protocol ([`crate::proto`] over
//! [`jsonio::framed`]), and reaps outcomes. Managers pull from the
//! shared queue, so a slow or dying worker slot never strands cells
//! that a healthy sibling could run.
//!
//! ## Crash discipline
//!
//! A worker death — clean exit, SIGKILL, `abort()`, torn frame, or
//! watchdog shot — costs exactly the attempts in flight on that worker.
//! Each is journaled [`journal::Status::Crashed`] (so a killed campaign
//! resumes knowing the cell was dispatched) and re-queued until the
//! cell's ordinary [`crate::Runner::max_attempts`] budget is spent,
//! then quarantined with a machine-readable `worker-crash` reason. The
//! manager re-spawns its worker with bounded exponential backoff; a
//! slot whose respawn budget is exhausted *gives up* — graceful
//! degradation, not collapse. If every slot gives up, whatever is left
//! in the queue is quarantined `worker-pool-exhausted` and the run
//! reports Degraded instead of hanging.
//!
//! ## Deadlines
//!
//! Two layers, deliberately different: the *deterministic* deadline is
//! the work-unit budget the worker itself enforces from harvested
//! engine counters (`deadline` quarantines reproduce exactly on every
//! rerun — no wall clock in the verdict). The *wall-clock* watchdog
//! lives only up here: a worker that stops answering for
//! [`IsolateConfig::watchdog_ms`] is presumed wedged and shot, which
//! funnels into the same crash discipline. Wall time decides only
//! *liveness*, never a record byte.

use crate::telemetry::{Progress, Stopwatch};
use crate::{
    assemble_report, cache, journal, lockfile, pool::lock_clean, proto, store, CacheMode, Cell,
    CellError, CellOutcome, CellSpec, CellValue, QuarantineKind, RunReport, Runner,
};
use jsonio::framed::{FrameReader, FrameWriter};
use jsonio::Json;
use std::collections::VecDeque;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Mutex;
use std::time::Duration;

/// Configuration of one process-isolated campaign.
#[derive(Clone, Debug)]
pub struct IsolateConfig {
    /// Worker subprocess command line: program plus arguments. The
    /// command must speak the [`crate::proto`] protocol on its
    /// stdin/stdout (the CLI re-executes itself as `smi-lab worker ...`)
    /// and must rebuild the *same* cell catalog the supervisor holds.
    pub worker_cmd: Vec<String>,
    /// Worker subprocess slots (clamped to at least 1, and to the
    /// number of pending cells).
    pub workers: usize,
    /// Respawns a slot may consume after crashes before it gives up.
    pub respawn_budget: u32,
    /// Base respawn backoff in milliseconds; doubles per consecutive
    /// crash of the slot (capped at 32x).
    pub backoff_ms: u64,
    /// Deterministic per-cell work-unit budget (engine events popped);
    /// `0` disables deadlines. Enforced *in the worker* from harvested
    /// counters, so the verdict is wall-clock free and reproducible.
    pub deadline_units: u64,
    /// Wall-clock watchdog: a worker silent for this long with work in
    /// flight is presumed wedged and killed. Liveness only — it can
    /// cost attempts, never change a record byte.
    pub watchdog_ms: u64,
    /// Admission bound: cells a manager keeps in flight on its worker
    /// at once (clamped to at least 1). Backpressure, and the bound on
    /// how many attempts one worker death can cost.
    pub inflight: usize,
    /// Fault injection for tests and the CI gate: cells whose label is
    /// listed here get their worker SIGKILLed right after dispatch.
    pub kill_cells: Vec<String>,
}

impl IsolateConfig {
    /// A config with conservative defaults around a worker command.
    pub fn new(worker_cmd: Vec<String>) -> IsolateConfig {
        IsolateConfig {
            worker_cmd,
            workers: 1,
            respawn_budget: 3,
            backoff_ms: 25,
            deadline_units: 0,
            watchdog_ms: 30_000,
            inflight: 1,
            kill_cells: Vec::new(),
        }
    }
}

/// Per-slot supervision accounting, reported into the manifest.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Subprocesses spawned for this slot (1 + respawns).
    pub spawns: u64,
    /// Worker deaths observed (exit, kill, protocol break, watchdog).
    pub crashes: u64,
    /// Cells this slot completed with a payload.
    pub cells_ok: u64,
    /// Cells quarantined `worker-crash` at this slot.
    pub cells_crashed: u64,
    /// Cells quarantined `deadline` at this slot.
    pub cells_deadline: u64,
    /// Whether the slot exhausted its respawn budget and gave up.
    pub gave_up: bool,
}

/// Whole-pool supervision accounting for one isolated run.
#[derive(Clone, Debug, Default)]
pub struct IsolateReport {
    /// Per-slot accounting, one entry per worker slot.
    pub workers: Vec<WorkerStats>,
    /// Cells quarantined because every slot gave up before they ran.
    pub pool_exhausted_cells: u64,
}

/// One queued unit of work. The cell's closure stays behind in the
/// supervisor (workers rebuild work from the spec); only identity and
/// attempt accounting travel.
struct WorkItem {
    idx: usize,
    spec: CellSpec,
    key: cache::CacheKey,
    attempts: u32,
    watch: Option<Stopwatch>,
}

impl WorkItem {
    fn elapsed(&self) -> u64 {
        self.watch.as_ref().map(|w| w.elapsed_micros()).unwrap_or(0)
    }
}

/// Shared campaign state every manager thread works against.
struct Ctx<'a> {
    runner: &'a Runner,
    cfg: &'a IsolateConfig,
    progress: &'a Progress,
    store: Option<&'a store::Store>,
    writer: Option<&'a journal::Writer>,
    queue: Mutex<VecDeque<WorkItem>>,
    slots: Vec<Mutex<Option<CellOutcome>>>,
    completed: AtomicUsize,
    pending_total: usize,
}

impl Ctx<'_> {
    fn journal(&self, key: cache::CacheKey, cell: &str, status: journal::Status, attempts: u32) {
        if let Some(w) = self.writer {
            if self.progress.storage_bypass() {
                self.progress.note_bypassed_write();
            } else if w.append(key, cell, status, attempts).is_err() {
                self.progress.note_store_error();
            }
        }
    }

    /// Deposit a finished outcome into its submission-order slot and
    /// count it toward campaign completion.
    fn finish(&self, item: WorkItem, result: Result<CellValue, CellError>) {
        let WorkItem { idx, spec, key, .. } = item;
        if let Some(slot) = self.slots.get(idx) {
            *lock_clean(slot) = Some(CellOutcome { spec, key, result });
        }
        self.completed.fetch_add(1, Ordering::AcqRel);
    }

    fn done(&self) -> bool {
        self.completed.load(Ordering::Acquire) >= self.pending_total
    }
}

/// Run a campaign process-isolated. Same contract as the in-process
/// `Runner::run` — outcomes in submission order, byte-identical records
/// — plus the supervision accounting in [`RunReport::isolate`].
pub fn run_isolated(
    runner: &Runner,
    cfg: &IsolateConfig,
    label: &str,
    cells: Vec<Cell>,
    lock_broken: Option<lockfile::BrokenLock>,
) -> RunReport {
    let progress = Progress::new(cells.len() as u64, runner.verbose)
        .with_disk_fault_limit(runner.disk_fault_limit);
    let started = Stopwatch::start();
    let (store, writer, mut account) = runner.open_storage(label, &cells, &progress, lock_broken);

    // Intake: satisfy cache hits here (cached payloads never cross a
    // pipe, so caching cannot perturb record bytes), queue the rest.
    let total = cells.len();
    let slots: Vec<Mutex<Option<CellOutcome>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let mut identities: Vec<(CellSpec, cache::CacheKey)> = Vec::with_capacity(total);
    let mut queue = VecDeque::new();
    for (idx, cell) in cells.into_iter().enumerate() {
        let key = cache::cell_key(&runner.code_version, &cell.spec);
        identities.push((cell.spec.clone(), key));
        if runner.cache_mode == CacheMode::ReadWrite {
            if let Some(store) = &store {
                match store.load(key, &cell.spec) {
                    cache::Lookup::Hit(payload) => {
                        progress.cell_done(&cell.spec.cell, 0, true);
                        if let Some(w) = &writer {
                            if progress.storage_bypass() {
                                progress.note_bypassed_write();
                            } else if w
                                .append(key, &cell.spec.cell, journal::Status::Ok, 0)
                                .is_err()
                            {
                                progress.note_store_error();
                            }
                        }
                        *lock_clean(&slots[idx]) = Some(CellOutcome {
                            spec: cell.spec,
                            key,
                            result: Ok(CellValue { payload, cached: true, attempts: 0, micros: 0 }),
                        });
                        continue;
                    }
                    cache::Lookup::Corrupt => progress.note_load_corruption(),
                    cache::Lookup::Miss => {}
                }
            }
        }
        queue.push_back(WorkItem { idx, spec: cell.spec, key, attempts: 0, watch: None });
    }

    let pending_total = queue.len();
    let ctx = Ctx {
        runner,
        cfg,
        progress: &progress,
        store: store.as_ref(),
        writer: writer.as_ref(),
        queue: Mutex::new(queue),
        slots,
        completed: AtomicUsize::new(0),
        pending_total,
    };
    let worker_slots = cfg.workers.max(1).min(pending_total.max(1));
    let mut stats: Vec<WorkerStats> = vec![WorkerStats::default(); worker_slots];
    if pending_total > 0 {
        std::thread::scope(|scope| {
            for stat in stats.iter_mut() {
                let ctx = &ctx;
                scope.spawn(move || manage_worker(ctx, stat));
            }
        });
    }

    // Every manager has returned. Anything still queued outlived every
    // slot's respawn budget: quarantine it with a typed reason rather
    // than hang or abort the campaign.
    let mut pool_exhausted = 0u64;
    loop {
        let item = lock_clean(&ctx.queue).pop_front();
        let Some(item) = item else { break };
        pool_exhausted += 1;
        let micros = item.elapsed();
        let attempts = item.attempts;
        ctx.progress.cell_crashed(&item.spec.cell, micros);
        ctx.journal(item.key, &item.spec.cell, journal::Status::Crashed, attempts);
        let reason = Json::obj(vec![
            ("kind", Json::Str("worker-pool-exhausted".into())),
            ("attempts", Json::U64(attempts as u64)),
        ]);
        ctx.finish(
            item,
            Err(CellError {
                message: "worker pool exhausted: every worker slot spent its respawn budget"
                    .to_string(),
                reason,
                kind: QuarantineKind::Crashed,
                attempts,
                micros,
            }),
        );
    }

    let Ctx { slots, .. } = ctx;
    let outcomes: Vec<CellOutcome> = slots
        .into_iter()
        .zip(identities)
        .map(|(slot, (spec, key))| {
            let filled = slot.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner());
            filled.unwrap_or_else(|| {
                // Unreachable by construction (every index is either a
                // cache hit, finished by a manager, or drained above);
                // kept total for the no-panic discipline.
                progress.cell_crashed(&spec.cell, 0);
                CellOutcome {
                    spec,
                    key,
                    result: Err(CellError {
                        message: "cell never completed: supervisor accounting hole".to_string(),
                        reason: Json::obj(vec![(
                            "kind",
                            Json::Str("worker-pool-exhausted".into()),
                        )]),
                        kind: QuarantineKind::Crashed,
                        attempts: 0,
                        micros: 0,
                    }),
                }
            })
        })
        .collect();

    let isolate = IsolateReport { workers: stats, pool_exhausted_cells: pool_exhausted };
    if let Some(store) = &store {
        account.store = store.counters();
        // Bookkeeping append failures are disk faults too: fold them
        // into the counted store errors so they degrade the run.
        for _ in 0..account.store.index_errors {
            progress.note_store_error();
        }
    }
    assemble_report(runner, label, &progress, &started, account, outcomes, Some(isolate))
}

/// One manager thread: own one worker slot until the campaign drains
/// or the slot's respawn budget is spent.
fn manage_worker(ctx: &Ctx<'_>, stats: &mut WorkerStats) {
    let mut conn: Option<Conn> = None;
    let mut inflight: VecDeque<(u64, WorkItem)> = VecDeque::new();
    let mut next_id: u64 = 1;
    let max_inflight = ctx.cfg.inflight.max(1);
    loop {
        if ctx.done() && inflight.is_empty() {
            break;
        }
        if conn.is_none() {
            if stats.crashes > ctx.cfg.respawn_budget as u64 {
                // Give up the slot. Crash handling already requeued or
                // quarantined everything we had in flight; siblings (or
                // the pool-exhausted drain) own the rest.
                stats.gave_up = true;
                return;
            }
            if stats.crashes > 0 {
                let shift = (stats.crashes - 1).min(5) as u32;
                std::thread::sleep(Duration::from_millis(ctx.cfg.backoff_ms << shift));
            }
            match Conn::spawn(&ctx.cfg.worker_cmd) {
                Ok(c) => {
                    stats.spawns += 1;
                    conn = Some(c);
                }
                Err(()) => {
                    stats.crashes += 1;
                    continue;
                }
            }
        }
        // Admission: dispatch from the shared queue up to the in-flight
        // bound. The bound is also backpressure — it caps the attempts
        // one worker death can cost.
        let mut pipe_broke = false;
        let mut kill_injected = false;
        while inflight.len() < max_inflight {
            let popped = lock_clean(&ctx.queue).pop_front();
            let Some(mut item) = popped else { break };
            if item.watch.is_none() {
                item.watch = Some(Stopwatch::start());
            }
            let id = next_id;
            next_id += 1;
            let msg = proto::ToWorker::Run {
                id,
                attempt: item.attempts + 1,
                budget_units: ctx.cfg.deadline_units,
                spec: item.spec.clone(),
            };
            let kill_after = ctx.cfg.kill_cells.contains(&item.spec.cell);
            let Some(c) = conn.as_mut() else { break };
            match c.tx.write(&msg.to_json()) {
                Ok(()) => {
                    inflight.push_back((id, item));
                    if kill_after {
                        // Injected fault: SIGKILL our own worker with
                        // this cell in flight (the kill-resume gate).
                        let _ = c.child.kill();
                        kill_injected = true;
                        break;
                    }
                }
                Err(_) => {
                    lock_clean(&ctx.queue).push_front(item);
                    pipe_broke = true;
                    break;
                }
            }
        }
        if pipe_broke {
            if let Some(c) = conn.take() {
                crash(ctx, stats, c, &mut inflight, "pipe-closed");
            }
            continue;
        }
        if kill_injected {
            // Account the injected kill as a crash *now*, without
            // draining the pipe first: if the supervisor was preempted
            // between the dispatch write and the kill, a fast worker may
            // already have replied `Done` for the doomed cell — reading
            // it would let the kill's target land Ok and the injection
            // silently miss. The attempt is charged either way, which is
            // exactly what a SIGKILL-with-the-cell-in-flight means.
            if let Some(c) = conn.take() {
                crash(ctx, stats, c, &mut inflight, "worker-exit");
            }
            continue;
        }
        if inflight.is_empty() {
            // Nothing to wait on, but the campaign is not done — a
            // sibling's crash may yet requeue work. Poll gently.
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        let Some(c) = conn.as_mut() else { continue };
        match c.rx.recv_timeout(Duration::from_millis(ctx.cfg.watchdog_ms.max(1))) {
            Ok(Ok(proto::FromWorker::Hello { .. })) => {}
            Ok(Ok(proto::FromWorker::Done { id, outcome })) => {
                if let Some(pos) = inflight.iter().position(|(i, _)| *i == id) {
                    if let Some((_, item)) = inflight.remove(pos) {
                        handle_outcome(ctx, stats, item, outcome);
                    }
                }
            }
            Ok(Err(_)) | Err(RecvTimeoutError::Disconnected) => {
                // Torn/garbage frame or worker exit: either way the
                // channel is unusable — treat as a death.
                if let Some(c) = conn.take() {
                    crash(ctx, stats, c, &mut inflight, "worker-exit");
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(c) = conn.take() {
                    crash(ctx, stats, c, &mut inflight, "watchdog-timeout");
                }
            }
        }
    }
    if let Some(c) = conn.take() {
        c.stop();
    }
}

/// Account one worker death: every in-flight attempt is journaled
/// `crashed`, then requeued (budget remaining) or quarantined
/// `worker-crash` (budget spent).
fn crash(
    ctx: &Ctx<'_>,
    stats: &mut WorkerStats,
    conn: Conn,
    inflight: &mut VecDeque<(u64, WorkItem)>,
    cause: &str,
) {
    stats.crashes += 1;
    conn.stop();
    let budget = ctx.runner.max_attempts.max(1);
    for (_, mut item) in inflight.drain(..) {
        item.attempts += 1;
        ctx.journal(item.key, &item.spec.cell, journal::Status::Crashed, item.attempts);
        if item.attempts < budget {
            ctx.progress.note_retry();
            lock_clean(&ctx.queue).push_front(item);
        } else {
            let micros = item.elapsed();
            let attempts = item.attempts;
            ctx.progress.cell_crashed(&item.spec.cell, micros);
            stats.cells_crashed += 1;
            let reason = Json::obj(vec![
                ("kind", Json::Str("worker-crash".into())),
                ("cause", Json::Str(cause.to_string())),
                ("attempts", Json::U64(attempts as u64)),
            ]);
            let message = format!("worker crashed ({cause}) on attempt {attempts} of {budget}");
            ctx.finish(
                item,
                Err(CellError { message, reason, kind: QuarantineKind::Crashed, attempts, micros }),
            );
        }
    }
}

/// Account one reported outcome, mirroring the in-process `run_cell`
/// semantics so the two execution modes agree on every record byte and
/// every exit code.
fn handle_outcome(
    ctx: &Ctx<'_>,
    stats: &mut WorkerStats,
    mut item: WorkItem,
    outcome: proto::WorkOutcome,
) {
    let budget = ctx.runner.max_attempts.max(1);
    match outcome {
        proto::WorkOutcome::Ok { payload, perf } => {
            if let Some(store) = ctx.store {
                if ctx.progress.storage_bypass() {
                    ctx.progress.note_bypassed_write();
                } else if store.put(item.key, &item.spec, &payload).is_err() {
                    ctx.progress.note_store_error();
                }
            }
            ctx.progress.note_engine(perf);
            let micros = item.elapsed();
            let attempts = item.attempts + 1;
            ctx.progress.cell_done(&item.spec.cell, micros, false);
            ctx.journal(item.key, &item.spec.cell, journal::Status::Ok, attempts);
            stats.cells_ok += 1;
            ctx.finish(item, Ok(CellValue { payload, cached: false, attempts, micros }));
        }
        proto::WorkOutcome::Invalid { reason } => {
            let micros = item.elapsed();
            let attempts = item.attempts + 1;
            ctx.progress.cell_invalid(&item.spec.cell, micros);
            ctx.journal(item.key, &item.spec.cell, journal::Status::Failed, attempts);
            ctx.finish(
                item,
                Err(CellError {
                    message: crate::reason_message(&reason),
                    reason,
                    kind: QuarantineKind::Invalid,
                    attempts,
                    micros,
                }),
            );
        }
        proto::WorkOutcome::Panic { message } => {
            item.attempts += 1;
            if item.attempts < budget {
                ctx.progress.note_retry();
                lock_clean(&ctx.queue).push_front(item);
            } else {
                let micros = item.elapsed();
                let attempts = item.attempts;
                ctx.progress.cell_failed(&item.spec.cell, micros);
                ctx.journal(item.key, &item.spec.cell, journal::Status::Failed, attempts);
                ctx.finish(
                    item,
                    Err(CellError {
                        message,
                        reason: Json::Null,
                        kind: QuarantineKind::Panic,
                        attempts,
                        micros,
                    }),
                );
            }
        }
        proto::WorkOutcome::Deadline { budget_units, spent_units } => {
            // Deterministic verdict — a pure function of cell identity
            // and budget — so retrying would only reproduce it.
            let micros = item.elapsed();
            let attempts = item.attempts + 1;
            ctx.progress.cell_deadline(&item.spec.cell, micros);
            stats.cells_deadline += 1;
            ctx.journal(item.key, &item.spec.cell, journal::Status::Failed, attempts);
            let reason = Json::obj(vec![
                ("kind", Json::Str("deadline".into())),
                ("budget_units", Json::U64(budget_units)),
                ("spent_units", Json::U64(spent_units)),
            ]);
            let message = format!(
                "deadline: spent {spent_units} work units over the {budget_units}-unit budget"
            );
            ctx.finish(
                item,
                Err(CellError {
                    message,
                    reason,
                    kind: QuarantineKind::Deadline,
                    attempts,
                    micros,
                }),
            );
        }
        proto::WorkOutcome::Unresolvable { message } => {
            // The worker's catalog cannot produce this cell — a config
            // mismatch, deterministic on every retry. Quarantine as a
            // structured rejection.
            let micros = item.elapsed();
            let attempts = item.attempts + 1;
            ctx.progress.cell_invalid(&item.spec.cell, micros);
            ctx.journal(item.key, &item.spec.cell, journal::Status::Failed, attempts);
            let reason = Json::obj(vec![
                ("kind", Json::Str("unresolvable-cell".into())),
                ("message", Json::Str(message.clone())),
            ]);
            ctx.finish(
                item,
                Err(CellError { message, reason, kind: QuarantineKind::Invalid, attempts, micros }),
            );
        }
    }
}

/// One live worker connection: the child, a frame writer over its
/// stdin, and a reader thread pumping decoded frames off its stdout
/// into a channel (so the manager can `recv_timeout` as a watchdog).
struct Conn {
    child: Child,
    tx: FrameWriter<ChildStdin>,
    rx: Receiver<Result<proto::FromWorker, String>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Conn {
    fn spawn(cmd: &[String]) -> Result<Conn, ()> {
        let (program, args) = cmd.split_first().ok_or(())?;
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|_| ())?;
        let (stdin, stdout) = match (child.stdin.take(), child.stdout.take()) {
            (Some(i), Some(o)) => (i, o),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(());
            }
        };
        let (sender, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut frames = FrameReader::new(stdout);
            loop {
                let msg = match frames.read() {
                    Ok(Some(frame)) => {
                        proto::FromWorker::from_json(&frame).map_err(|e| e.to_string())
                    }
                    Ok(None) => return,
                    Err(e) => Err(e.to_string()),
                };
                let fatal = msg.is_err();
                if sender.send(msg).is_err() || fatal {
                    return;
                }
            }
        });
        Ok(Conn { child, tx: FrameWriter::new(stdin), rx, reader: Some(reader) })
    }

    /// Tear the connection down without ever blocking unboundedly:
    /// best-effort graceful `Shutdown`, then kill (idempotent on an
    /// already-dead child), reap the zombie, and join the reader (its
    /// pipe EOFs once the child is gone).
    fn stop(mut self) {
        let _ = self.tx.write(&proto::ToWorker::Shutdown.to_json());
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunStatus;
    use std::path::PathBuf;

    fn spec(cell: &str) -> CellSpec {
        CellSpec {
            experiment: "iso-unit".into(),
            cell: cell.into(),
            params: Json::Null,
            seed: 3,
            reps: 1,
        }
    }

    fn cells(n: usize) -> Vec<Cell> {
        (0..n).map(|i| Cell::new(spec(&format!("c{i}")), || Json::U64(1))).collect()
    }

    fn no_cache_runner(cfg: IsolateConfig) -> Runner {
        let mut r = Runner::new(2);
        r.cache_mode = CacheMode::Off;
        r.verbose = false;
        r.isolate = Some(cfg);
        r
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smi-lab-supervisor-test-{}-{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn unspawnable_worker_exhausts_pool_and_degrades() {
        let mut cfg = IsolateConfig::new(vec!["/nonexistent/smi-lab-worker-binary".into()]);
        cfg.workers = 2;
        cfg.respawn_budget = 1;
        cfg.backoff_ms = 1;
        let runner = no_cache_runner(cfg);
        let report = runner.run("iso-unspawnable", cells(3));
        assert_eq!(report.cells_total, 3, "the campaign still drains");
        assert_eq!(report.cells_crashed, 3, "every cell quarantines, none hangs");
        assert_eq!(report.status(), RunStatus::Degraded, "graceful degradation, not collapse");
        let iso = report.isolate.as_ref().expect("isolate accounting present");
        assert!(iso.workers.iter().all(|w| w.gave_up), "both slots spent their budget");
        assert!(iso.workers.iter().all(|w| w.spawns == 0), "nothing ever spawned");
        assert_eq!(iso.pool_exhausted_cells, 3);
        for q in &report.quarantined {
            assert_eq!(
                q.reason.get("kind").and_then(Json::as_str),
                Some("worker-pool-exhausted"),
                "machine-readable reason on every hole"
            );
        }
        let m = report.manifest();
        let iso_m = m.get("isolate").expect("manifest isolate block");
        assert_eq!(iso_m.get("workers").and_then(Json::as_u64), Some(2));
        assert_eq!(iso_m.get("pool_exhausted_cells").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn protocol_garbage_counts_as_crash_and_consumes_attempts() {
        // A "worker" that emits garbage instead of frames: every
        // dispatch dies with a protocol error, burning one attempt per
        // death, until the cell quarantines as worker-crash.
        let mut cfg = IsolateConfig::new(vec![
            "/bin/sh".into(),
            "-c".into(),
            "echo not-a-frame; sleep 5".into(),
        ]);
        cfg.respawn_budget = 5;
        cfg.backoff_ms = 1;
        let mut runner = no_cache_runner(cfg);
        runner.max_attempts = 2;
        let report = runner.run("iso-garbage", cells(1));
        assert_eq!(report.cells_crashed, 1);
        assert_eq!(report.status(), RunStatus::Degraded);
        let q = &report.quarantined[0];
        assert_eq!(q.reason.get("kind").and_then(Json::as_str), Some("worker-crash"));
        assert_eq!(q.attempts, 2, "the ordinary attempt budget bounds crash retries");
        assert_eq!(report.retries, 1, "the non-final deaths were retries");
    }

    #[test]
    fn crashed_cells_are_journaled_for_resume() {
        let dir = tmp_dir("journal");
        let mut cfg = IsolateConfig::new(vec!["/bin/false".into()]);
        cfg.respawn_budget = 5;
        cfg.backoff_ms = 1;
        let mut runner = Runner::new(1);
        runner.cache_dir = dir.clone();
        runner.verbose = false;
        runner.max_attempts = 2;
        runner.isolate = Some(cfg);
        let report = runner.run("iso-journal", cells(1));
        assert_eq!(report.cells_crashed, 1);
        let j = journal::Journal::load(&journal::journal_path(&dir, "iso-journal"));
        assert_eq!(
            j.status(report.outcomes[0].key),
            Some(journal::Status::Crashed),
            "a worker death mid-cell must be journaled, not silently lost"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
