//! Shared content-addressed store: the durable layer over [`crate::cache`].
//!
//! The cache module owns the object format (sealed, checksummed entries
//! in `<root>/<xx>/<key>.json` shards); this module turns that flat
//! object space into a *shared, auditable, repairable* store:
//!
//! * **Per-campaign indexes** — `<root>/index/<label>.idx` is an
//!   append-only file of sealed `{"key":...}` lines, one per entry the
//!   campaign references. Two campaigns whose cell identities overlap
//!   share the underlying objects: the second campaign's lookups hit
//!   entries the first one computed ([`StoreCounters::dedup_hits`]
//!   proves it), and its index simply adds references. Compaction
//!   ([`compact`]) removes objects no index references.
//! * **Write-ahead intent log** — `<root>/intent/<label>.log` records a
//!   sealed `begin` line before every object publish and an `end` line
//!   after it. A crash or injected fault between the two leaves an
//!   unresolved intent; [`Store::open`] replays the log, verifies each
//!   suspect object's checksum, removes the torn ones, and truncates the
//!   log — so a store is *always* either consistent or one `open` (or
//!   one `fsck --repair`) away from it.
//! * **fsck** — [`fsck`] audits a whole store offline: orphaned temp
//!   files, torn or mis-keyed entries, dangling or torn index lines,
//!   unresolved intents, stale campaign locks, torn journal tails. Every
//!   finding has a machine-readable kind and a repair action; `repair`
//!   applies them in dependency order (objects before indexes before
//!   intents).
//!
//! All store traffic flows through the campaign's [`crate::vfs::Vfs`]
//! handle, so the durability suite can tear, starve, and fail exactly
//! these writes and assert the invariant the module exists for: a fault
//! may lose work, never corrupt it undetected.

use crate::cache::{self, CacheKey, Lookup, SweepStats};
use crate::vfs::Vfs;
use crate::CellSpec;
use jsonio::{checked, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sanitize a campaign label for use in store bookkeeping file names
/// (same rule as journals and manifests).
fn safe_label(label: &str) -> String {
    label.replace(['/', ' '], "-")
}

/// Path of a campaign's index file under a store root.
pub fn index_path(root: &Path, label: &str) -> PathBuf {
    root.join("index").join(format!("{}.idx", safe_label(label)))
}

/// Path of a campaign's write-ahead intent log under a store root.
pub fn intent_path(root: &Path, label: &str) -> PathBuf {
    root.join("intent").join(format!("{}.log", safe_label(label)))
}

/// Entry path for a raw hex key (fsck and compaction work from index
/// lines, which carry keys as hex strings, not [`CacheKey`]s).
fn entry_path_hex(root: &Path, hex: &str) -> Option<PathBuf> {
    if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some(root.join(&hex[..2]).join(format!("{hex}.json")))
}

/// What [`Store::open`] found and fixed while bringing the store to a
/// consistent state for this campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenStats {
    /// Stranded temp files swept, by area.
    pub sweep: SweepStats,
    /// Unresolved write intents replayed from the campaign's log.
    pub intents_resolved: u64,
    /// Objects a replayed intent proved torn, now removed.
    pub torn_entries_removed: u64,
}

/// Monotonic counters a store accumulates over one campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Verified lookups of entries this campaign already referenced
    /// (its own prior runs — the resume path).
    pub hits: u64,
    /// Verified lookups of entries some *other* campaign computed:
    /// cross-campaign dedup, the shared-store payoff.
    pub dedup_hits: u64,
    /// Cold misses.
    pub misses: u64,
    /// Entries present but torn/corrupt (recomputed, counted).
    pub corrupt: u64,
    /// Objects published by this campaign.
    pub puts: u64,
    /// Failed index or intent bookkeeping appends. The objects
    /// themselves are fine; the reference accounting is incomplete, so
    /// these count toward degradation.
    pub index_errors: u64,
}

/// A campaign's handle on the shared store. Thread-safe: lookups and
/// publishes run concurrently from pool workers.
pub struct Store {
    root: PathBuf,
    code_version: String,
    vfs: Vfs,
    index_file: Mutex<Option<std::fs::File>>,
    index_file_path: PathBuf,
    intent_file: Mutex<Option<std::fs::File>>,
    intent_file_path: PathBuf,
    index_keys: Mutex<BTreeSet<String>>,
    hits: AtomicU64,
    dedup_hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    puts: AtomicU64,
    index_errors: AtomicU64,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("root", &self.root)
            .field("code_version", &self.code_version)
            .field("counters", &self.counters())
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Open the store for one campaign: sweep stranded temp files,
    /// replay the campaign's intent log (removing objects a fault tore
    /// mid-publish), load the campaign's index, and open the bookkeeping
    /// appenders. Infallible by design — on an unwritable root the store
    /// degrades to counting bookkeeping errors while lookups still work.
    ///
    /// Call only with the campaign lock held: open truncates this
    /// label's intent log, which must not race a live writer.
    pub fn open(vfs: Vfs, root: &Path, label: &str, code_version: &str) -> (Store, OpenStats) {
        let mut stats = OpenStats { sweep: cache::sweep_stats(root), ..OpenStats::default() };

        // Replay this campaign's write-ahead intents: a `begin` with no
        // `end` means a publish was in flight when the last run died.
        // The object is either whole (the end line was the casualty) or
        // torn (the publish was) — its checksum says which.
        let intent = intent_path(root, label);
        if let Ok(text) = std::fs::read_to_string(&intent) {
            let mut pending: BTreeMap<String, bool> = BTreeMap::new();
            for line in text.lines() {
                let Ok(record) = checked::unseal(line) else { continue };
                let (Some(op), Some(key)) = (
                    record.get("op").and_then(Json::as_str),
                    record.get("key").and_then(Json::as_str),
                ) else {
                    continue;
                };
                match op {
                    "begin" => {
                        pending.insert(key.to_string(), false);
                    }
                    "end" => {
                        pending.insert(key.to_string(), true);
                    }
                    _ => {}
                }
            }
            for (key, resolved) in &pending {
                if *resolved {
                    continue;
                }
                stats.intents_resolved += 1;
                let Some(path) = entry_path_hex(root, key) else { continue };
                let torn = match std::fs::read_to_string(&path) {
                    Ok(entry) => checked::unseal(&entry).is_err(),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
                    Err(_) => true,
                };
                if torn && std::fs::remove_file(&path).is_ok() {
                    stats.torn_entries_removed += 1;
                }
            }
            let _ = std::fs::remove_file(&intent);
        }

        // Load this campaign's index: keys referenced by prior runs.
        // Torn lines are skipped here (fsck reports them); the worst
        // outcome is a re-appended reference.
        let index = index_path(root, label);
        let mut keys = BTreeSet::new();
        if let Ok(text) = std::fs::read_to_string(&index) {
            for line in text.lines() {
                let Ok(record) = checked::unseal(line) else { continue };
                if let Some(key) = record.get("key").and_then(Json::as_str) {
                    keys.insert(key.to_string());
                }
            }
        }

        let append = |path: &Path| -> Option<std::fs::File> {
            let parent = path.parent()?;
            std::fs::create_dir_all(parent).ok()?;
            std::fs::OpenOptions::new().create(true).append(true).open(path).ok()
        };
        let store = Store {
            root: root.to_path_buf(),
            code_version: code_version.to_string(),
            vfs,
            index_file: Mutex::new(append(&index)),
            index_file_path: index,
            intent_file: Mutex::new(append(&intent)),
            intent_file_path: intent,
            index_keys: Mutex::new(keys),
            hits: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            index_errors: AtomicU64::new(0),
        };
        (store, stats)
    }

    /// Snapshot the campaign's store counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Acquire),
            dedup_hits: self.dedup_hits.load(Ordering::Acquire),
            misses: self.misses.load(Ordering::Acquire),
            corrupt: self.corrupt.load(Ordering::Acquire),
            puts: self.puts.load(Ordering::Acquire),
            index_errors: self.index_errors.load(Ordering::Acquire),
        }
    }

    /// Append one sealed bookkeeping line, counting (never propagating)
    /// failures: bookkeeping is an accounting layer over objects that
    /// are already durable on their own.
    fn append_sealed(
        &self,
        file: &Mutex<Option<std::fs::File>>,
        tag: &Path,
        record: &Json,
    ) -> bool {
        let mut line = checked::seal(record);
        line.push('\n');
        let mut guard = crate::pool::lock_clean(file);
        let Some(handle) = guard.as_mut() else {
            self.index_errors.fetch_add(1, Ordering::AcqRel);
            return false;
        };
        if self.vfs.append_line(handle, tag, &line).is_err() {
            self.index_errors.fetch_add(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    /// Record that this campaign references `key`, appending an index
    /// line the first time.
    fn add_ref(&self, key: CacheKey) {
        let hex = key.hex();
        {
            let mut keys = crate::pool::lock_clean(&self.index_keys);
            if !keys.insert(hex.clone()) {
                return;
            }
        }
        let record = Json::obj(vec![("key", Json::Str(hex))]);
        self.append_sealed(&self.index_file, &self.index_file_path, &record);
    }

    fn intent(&self, op: &str, key: CacheKey) {
        let record =
            Json::obj(vec![("op", Json::Str(op.to_string())), ("key", Json::Str(key.hex()))]);
        self.append_sealed(&self.intent_file, &self.intent_file_path, &record);
    }

    /// Look up a cell. Hits are classified: a key this campaign already
    /// referenced is a plain hit (the resume path); a key it never
    /// referenced is a cross-campaign dedup hit, and gains a reference.
    pub fn load(&self, key: CacheKey, spec: &CellSpec) -> Lookup {
        let result = cache::load_with(&self.vfs, &self.root, key, &self.code_version, spec);
        match &result {
            Lookup::Hit(_) => {
                let known = crate::pool::lock_clean(&self.index_keys).contains(&key.hex());
                if known {
                    self.hits.fetch_add(1, Ordering::AcqRel);
                } else {
                    self.dedup_hits.fetch_add(1, Ordering::AcqRel);
                    self.add_ref(key);
                }
            }
            Lookup::Miss => {
                self.misses.fetch_add(1, Ordering::AcqRel);
            }
            Lookup::Corrupt => {
                self.corrupt.fetch_add(1, Ordering::AcqRel);
            }
        }
        result
    }

    /// Publish a computed payload: intent `begin`, atomic object write,
    /// intent `end`, index reference. An `Err` means the object did not
    /// (verifiably) land — the caller counts it as a store error; the
    /// unresolved intent makes the next open re-verify the suspect key.
    pub fn put(&self, key: CacheKey, spec: &CellSpec, payload: &Json) -> std::io::Result<()> {
        self.intent("begin", key);
        cache::store_with(&self.vfs, &self.root, key, &self.code_version, spec, payload)?;
        self.puts.fetch_add(1, Ordering::AcqRel);
        self.intent("end", key);
        self.add_ref(key);
        Ok(())
    }
}

/// What one compaction pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Index files consulted.
    pub index_files: u64,
    /// Distinct referenced keys across all indexes.
    pub referenced: u64,
    /// Unreferenced objects removed.
    pub removed: u64,
    /// Objects kept (referenced by at least one index).
    pub kept: u64,
}

/// Remove every object no campaign index references. Offline-only: run
/// it while no campaign is live on this root (fsck's `--compact` does).
/// Torn index lines make their key *unreferenced* only if no intact line
/// elsewhere claims it — repair indexes first (`fsck --repair`).
pub fn compact(root: &Path, vfs: &Vfs) -> CompactStats {
    let mut stats = CompactStats::default();
    let mut referenced = BTreeSet::new();
    if let Ok(entries) = std::fs::read_dir(root.join("index")) {
        for entry in entries.flatten() {
            let Ok(text) = std::fs::read_to_string(entry.path()) else { continue };
            stats.index_files += 1;
            for line in text.lines() {
                let Ok(record) = checked::unseal(line) else { continue };
                if let Some(key) = record.get("key").and_then(Json::as_str) {
                    referenced.insert(key.to_string());
                }
            }
        }
    }
    stats.referenced = referenced.len() as u64;
    for (path, stem) in shard_objects(root) {
        if referenced.contains(&stem) {
            stats.kept += 1;
        } else if vfs.remove_file(&path).is_ok() {
            stats.removed += 1;
        }
    }
    stats
}

/// Every object file in the store's two-hex-char shard directories, as
/// `(path, key-hex)` pairs, in deterministic order.
fn shard_objects(root: &Path) -> Vec<(PathBuf, String)> {
    let mut objects = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else { return objects };
    let mut shards: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name().is_some_and(|n| {
                    let n = n.to_string_lossy();
                    n.len() == 2 && n.bytes().all(|b| b.is_ascii_hexdigit())
                })
        })
        .collect();
    shards.sort();
    for shard in shards {
        let Ok(files) = std::fs::read_dir(&shard) else { continue };
        let mut paths: Vec<PathBuf> = files.flatten().map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let Some(name) = name else { continue };
            if name.contains(".tmp.") {
                continue;
            }
            let Some(stem) = name.strip_suffix(".json") else { continue };
            objects.push((path.clone(), stem.to_string()));
        }
    }
    objects
}

/// The machine-readable classes of store damage fsck can find.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// A stranded `*.tmp.*` file (killed mid-publish).
    OrphanTmp,
    /// An object whose sealed frame or checksum fails: torn write,
    /// truncation, or bit rot.
    TornEntry,
    /// An object whose checksum verifies but whose recorded key does not
    /// match its file name: a misfiled or forged entry.
    IdentityMismatch,
    /// An index line referencing an object that does not exist.
    DanglingIndexRef,
    /// An index line whose own frame or checksum fails.
    TornIndexLine,
    /// A write intent with a `begin` but no `end`: a publish was in
    /// flight when its campaign died.
    UnresolvedIntent,
    /// An intent line whose own frame or checksum fails.
    TornIntentLine,
    /// A campaign lock whose holder is dead (or torn).
    StaleLock,
    /// A journal whose tail is a torn fragment.
    TornJournalTail,
}

impl FindingKind {
    /// The stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::OrphanTmp => "orphan-tmp",
            FindingKind::TornEntry => "torn-entry",
            FindingKind::IdentityMismatch => "identity-mismatch",
            FindingKind::DanglingIndexRef => "dangling-index-ref",
            FindingKind::TornIndexLine => "torn-index-line",
            FindingKind::UnresolvedIntent => "unresolved-intent",
            FindingKind::TornIntentLine => "torn-intent-line",
            FindingKind::StaleLock => "stale-lock",
            FindingKind::TornJournalTail => "torn-journal-tail",
        }
    }
}

/// One piece of store damage: what, where, and the detail an operator
/// (or the CI gate) needs to audit it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Damage class.
    pub kind: FindingKind,
    /// Path of the damaged file, relative to the store root.
    pub path: String,
    /// Human-oriented specifics (key, byte counts, holder pid...).
    pub detail: String,
}

/// The result of one fsck pass.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Everything found, in scan order (objects, indexes, intents,
    /// locks, journals).
    pub findings: Vec<Finding>,
    /// Repairs applied (0 on audit-only passes).
    pub repaired: u64,
}

impl FsckReport {
    /// A store with no findings is Clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Machine-readable form for `smi-lab fsck --format json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("clean", Json::Bool(self.is_clean())),
            ("repaired", Json::U64(self.repaired)),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("kind", Json::Str(f.kind.label().to_string())),
                                ("path", Json::Str(f.path.clone())),
                                ("detail", Json::Str(f.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().into_owned()
}

/// Audit a store; with `repair`, also fix everything found, in
/// dependency order (objects first, then the indexes that reference
/// them, then intents, locks, and journal tails). Run offline: a live
/// campaign's lock would be reported — and must not be broken while its
/// holder runs, which is why only *stale* locks are findings. After a
/// repair pass, a fresh audit of an undisturbed store reports Clean.
pub fn fsck(root: &Path, repair: bool) -> FsckReport {
    let mut report = FsckReport::default();
    fn fix(applied: bool, report: &mut FsckReport) {
        if applied {
            report.repaired += 1;
        }
    }

    // Orphaned temp files, everywhere under the root (one level of
    // subdirectories covers shards, journal/, index/, intent/,
    // manifests/ — the store never nests deeper).
    let mut dirs = vec![root.to_path_buf()];
    if let Ok(entries) = std::fs::read_dir(root) {
        dirs.extend(entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()));
    }
    for dir in dirs {
        let Ok(files) = std::fs::read_dir(&dir) else { continue };
        let mut paths: Vec<PathBuf> = files.flatten().map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            if path.is_dir()
                || !path.file_name().is_some_and(|n| n.to_string_lossy().contains(".tmp."))
            {
                continue;
            }
            report.findings.push(Finding {
                kind: FindingKind::OrphanTmp,
                path: rel(root, &path),
                detail: "stranded temp file from an interrupted publish".to_string(),
            });
            if repair {
                fix(std::fs::remove_file(&path).is_ok(), &mut report);
            }
        }
    }

    // Objects: checksum and key-vs-filename verification.
    let mut existing = BTreeSet::new();
    for (path, stem) in shard_objects(root) {
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        match checked::unseal(&text) {
            Err(e) => {
                report.findings.push(Finding {
                    kind: FindingKind::TornEntry,
                    path: rel(root, &path),
                    detail: format!("{e}"),
                });
                if repair {
                    fix(std::fs::remove_file(&path).is_ok(), &mut report);
                }
            }
            Ok(entry) => {
                let recorded = entry.get("key").and_then(Json::as_str).unwrap_or("");
                if recorded != stem {
                    report.findings.push(Finding {
                        kind: FindingKind::IdentityMismatch,
                        path: rel(root, &path),
                        detail: format!("entry records key {recorded:?}"),
                    });
                    if repair {
                        fix(std::fs::remove_file(&path).is_ok(), &mut report);
                    }
                } else {
                    existing.insert(stem);
                }
            }
        }
    }

    // Indexes: every line must verify and point at a surviving object.
    if let Ok(entries) = std::fs::read_dir(root.join("index")) {
        let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            let Ok(text) = std::fs::read_to_string(&path) else { continue };
            let mut valid_lines = Vec::new();
            let mut damaged = false;
            for line in text.lines() {
                match checked::unseal(line) {
                    Err(e) => {
                        damaged = true;
                        report.findings.push(Finding {
                            kind: FindingKind::TornIndexLine,
                            path: rel(root, &path),
                            detail: format!("{e}"),
                        });
                    }
                    Ok(record) => {
                        let key =
                            record.get("key").and_then(Json::as_str).unwrap_or("").to_string();
                        if existing.contains(&key) {
                            valid_lines.push(line.to_string());
                        } else {
                            damaged = true;
                            report.findings.push(Finding {
                                kind: FindingKind::DanglingIndexRef,
                                path: rel(root, &path),
                                detail: format!("references missing object {key}"),
                            });
                        }
                    }
                }
            }
            if repair && damaged {
                let mut rebuilt = valid_lines.join("\n");
                if !rebuilt.is_empty() {
                    rebuilt.push('\n');
                }
                fix(Vfs::real().write_atomic(&path, &rebuilt).is_ok(), &mut report);
            }
        }
    }

    // Intents: unresolved begins and torn lines. Repair removes the log
    // wholesale — the objects were verified above, so nothing is left
    // for the intents to prove.
    if let Ok(entries) = std::fs::read_dir(root.join("intent")) {
        let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            let Ok(text) = std::fs::read_to_string(&path) else { continue };
            let mut pending: BTreeMap<String, bool> = BTreeMap::new();
            let mut damaged = false;
            for line in text.lines() {
                match checked::unseal(line) {
                    Err(e) => {
                        damaged = true;
                        report.findings.push(Finding {
                            kind: FindingKind::TornIntentLine,
                            path: rel(root, &path),
                            detail: format!("{e}"),
                        });
                    }
                    Ok(record) => {
                        let key = record.get("key").and_then(Json::as_str).unwrap_or("");
                        match record.get("op").and_then(Json::as_str) {
                            Some("begin") => {
                                pending.insert(key.to_string(), false);
                            }
                            Some("end") => {
                                pending.insert(key.to_string(), true);
                            }
                            _ => {}
                        }
                    }
                }
            }
            for (key, resolved) in &pending {
                if !resolved {
                    damaged = true;
                    report.findings.push(Finding {
                        kind: FindingKind::UnresolvedIntent,
                        path: rel(root, &path),
                        detail: format!("publish of {key} never confirmed"),
                    });
                }
            }
            if repair && damaged {
                fix(std::fs::remove_file(&path).is_ok(), &mut report);
            } else if repair && !text.is_empty() {
                // A fully-resolved log is not damage, but clearing it
                // keeps audits quiet and replays cheap.
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    // Stale campaign locks and torn journal tails.
    if let Ok(entries) = std::fs::read_dir(root.join("journal")) {
        let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let Some(name) = name else { continue };
            if name.contains(".tmp.") {
                continue; // already reported as an orphan
            }
            if name.ends_with(".lock") {
                if crate::lockfile::is_stale_lock_file(&path) {
                    let holder = std::fs::read_to_string(&path).unwrap_or_default();
                    report.findings.push(Finding {
                        kind: FindingKind::StaleLock,
                        path: rel(root, &path),
                        detail: format!("dead holder pid {:?}", holder.trim()),
                    });
                    if repair {
                        fix(std::fs::remove_file(&path).is_ok(), &mut report);
                    }
                }
            } else if name.ends_with(".jsonl") {
                let Ok(text) = std::fs::read_to_string(&path) else { continue };
                let keep = crate::journal::torn_tail_start(&text);
                if keep < text.len() {
                    report.findings.push(Finding {
                        kind: FindingKind::TornJournalTail,
                        path: rel(root, &path),
                        detail: format!("{} torn trailing bytes", text.len() - keep),
                    });
                    if repair {
                        fix(crate::journal::sweep_torn_tail(&path) > 0, &mut report);
                    }
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("smi-lab-store-test-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp root");
        dir
    }

    fn spec(n: u64) -> CellSpec {
        CellSpec {
            experiment: "table2".into(),
            cell: format!("A-n{n}-r1"),
            params: Json::obj(vec![("nodes", Json::U64(n))]),
            seed: 20160816 + n,
            reps: 3,
        }
    }

    #[test]
    fn two_campaigns_share_objects_and_count_dedup() {
        let root = tmp_root("dedup");
        let (alpha, _) = Store::open(Vfs::real(), &root, "alpha", "v1");
        for n in 0..4 {
            let key = cache::cell_key("v1", &spec(n));
            assert_eq!(alpha.load(key, &spec(n)), Lookup::Miss);
            alpha.put(key, &spec(n), &Json::U64(n)).expect("put");
        }
        assert_eq!(alpha.counters().misses, 4);
        assert_eq!(alpha.counters().puts, 4);

        // A second campaign overlapping on cells 2..4 hits alpha's
        // objects without recomputing: the shared-store dedup payoff.
        let (beta, _) = Store::open(Vfs::real(), &root, "beta", "v1");
        for n in 2..6 {
            let key = cache::cell_key("v1", &spec(n));
            match beta.load(key, &spec(n)) {
                Lookup::Hit(payload) => assert_eq!(payload, Json::U64(n)),
                other => {
                    assert!(n >= 4, "cell {n} must dedup-hit, got {other:?}");
                    beta.put(key, &spec(n), &Json::U64(n)).expect("put");
                }
            }
        }
        let counters = beta.counters();
        assert_eq!(counters.dedup_hits, 2, "overlap cells computed exactly once ever");
        assert_eq!(counters.hits, 0);
        assert_eq!(counters.puts, 2);
        assert_eq!(counters.index_errors, 0);

        // Beta's *own* rerun sees plain hits, not dedup hits.
        let (beta2, _) = Store::open(Vfs::real(), &root, "beta", "v1");
        for n in 2..6 {
            let key = cache::cell_key("v1", &spec(n));
            assert!(matches!(beta2.load(key, &spec(n)), Lookup::Hit(_)));
        }
        assert_eq!(beta2.counters().hits, 4, "resume hits are local, not dedup");
        assert_eq!(beta2.counters().dedup_hits, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unresolved_intent_removes_torn_object_and_keeps_whole_one() {
        let root = tmp_root("intent");
        let whole = cache::cell_key("v1", &spec(1));
        let torn = cache::cell_key("v1", &spec(2));
        {
            let (store, _) = Store::open(Vfs::real(), &root, "camp", "v1");
            store.put(whole, &spec(1), &Json::U64(1)).expect("put");
            store.put(torn, &spec(2), &Json::U64(2)).expect("put");
        }
        // Forge the crash window: both keys get a begin-with-no-end, and
        // the second object is physically torn.
        let log = intent_path(&root, "camp");
        let mut text = String::new();
        for key in [whole, torn] {
            let begin =
                Json::obj(vec![("op", Json::Str("begin".into())), ("key", Json::Str(key.hex()))]);
            text.push_str(&checked::seal(&begin));
            text.push('\n');
        }
        std::fs::write(&log, text).expect("forge intent log");
        let torn_path = cache::entry_path(&root, torn);
        let entry = std::fs::read_to_string(&torn_path).expect("read entry");
        std::fs::write(&torn_path, &entry[..entry.len() / 2]).expect("tear entry");

        let (store, stats) = Store::open(Vfs::real(), &root, "camp", "v1");
        assert_eq!(stats.intents_resolved, 2);
        assert_eq!(stats.torn_entries_removed, 1);
        assert!(matches!(store.load(whole, &spec(1)), Lookup::Hit(_)), "whole object survives");
        assert_eq!(store.load(torn, &spec(2)), Lookup::Miss, "torn object removed, clean miss");
        assert!(!log.exists() || std::fs::read_to_string(&log).expect("log").is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn compact_reclaims_unreferenced_objects_only() {
        let root = tmp_root("compact");
        let (store, _) = Store::open(Vfs::real(), &root, "camp", "v1");
        let kept = cache::cell_key("v1", &spec(1));
        store.put(kept, &spec(1), &Json::U64(1)).expect("put");
        drop(store);
        // An object nobody references (e.g. left by a campaign whose
        // index was deleted).
        let stray = cache::cell_key("v1", &spec(9));
        cache::store(&root, stray, "v1", &spec(9), &Json::U64(9)).expect("stray store");

        let stats = compact(&root, &Vfs::real());
        assert_eq!(stats, CompactStats { index_files: 1, referenced: 1, removed: 1, kept: 1 });
        assert!(cache::entry_path(&root, kept).exists());
        assert!(!cache::entry_path(&root, stray).exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fsck_finds_and_repairs_every_planted_damage_class() {
        let root = tmp_root("fsck");
        let (store, _) = Store::open(Vfs::real(), &root, "camp", "v1");
        let good = cache::cell_key("v1", &spec(1));
        let victim = cache::cell_key("v1", &spec(2));
        store.put(good, &spec(1), &Json::U64(1)).expect("put");
        store.put(victim, &spec(2), &Json::U64(2)).expect("put");
        drop(store);
        let _ = std::fs::remove_file(intent_path(&root, "camp"));

        // Plant one instance of each damage class.
        let victim_path = cache::entry_path(&root, victim);
        let entry = std::fs::read_to_string(&victim_path).expect("read");
        std::fs::write(&victim_path, &entry[..entry.len() / 2]).expect("torn entry");
        std::fs::create_dir_all(root.join("ab")).expect("mkdir shard");
        std::fs::write(root.join("ab").join("junk.json.tmp.1.0"), "x").expect("orphan tmp");
        let misfiled = cache::entry_path(&root, cache::cell_key("v1", &spec(3)));
        std::fs::create_dir_all(misfiled.parent().expect("parent")).expect("mkdir");
        std::fs::write(&misfiled, cache::entry_line(good, "v1", &spec(1), &Json::U64(1)))
            .expect("identity mismatch");
        let idx = index_path(&root, "camp");
        let mut idx_text = std::fs::read_to_string(&idx).expect("read index");
        idx_text.push_str("crc64:torn-index-line\n");
        std::fs::write(&idx, idx_text).expect("torn index line");
        let begin =
            Json::obj(vec![("op", Json::Str("begin".into())), ("key", Json::Str(victim.hex()))]);
        std::fs::write(intent_path(&root, "ghost"), format!("{}\n", checked::seal(&begin)))
            .expect("unresolved intent");
        std::fs::create_dir_all(root.join("journal")).expect("mkdir journal");
        std::fs::write(root.join("journal").join("dead.lock"), "4194304\n").expect("stale lock");
        std::fs::write(root.join("journal").join("camp.jsonl"), "{\"schema\":1}\n{\"torn")
            .expect("torn journal");

        let audit = fsck(&root, false);
        let kinds: BTreeSet<&str> = audit.findings.iter().map(|f| f.kind.label()).collect();
        for expected in [
            "orphan-tmp",
            "torn-entry",
            "identity-mismatch",
            "dangling-index-ref", // the torn victim entry strands its index line
            "torn-index-line",
            "unresolved-intent",
            "stale-lock",
            "torn-journal-tail",
        ] {
            assert!(kinds.contains(expected), "missing finding {expected}: {kinds:?}");
        }
        assert_eq!(audit.repaired, 0, "audit-only pass must not touch the store");
        let json = audit.to_json();
        assert_eq!(json.get("clean").and_then(Json::as_bool), Some(false));

        let repair = fsck(&root, true);
        assert!(repair.repaired > 0);
        let after = fsck(&root, false);
        assert!(after.is_clean(), "repair must restore Clean, found {:?}", after.findings);
        // The intact object and its index reference survive repair.
        assert_eq!(
            cache::load(&root, good, "v1", &spec(1)),
            Lookup::Hit(Json::U64(1)),
            "repair must never harm intact data"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
