//! Fault-path equivalence for the optimized engine hot path.
//!
//! The calendar event queue, the freeze-schedule cursor cache, and the
//! per-worker `SimArena` all carry state across runs on the same worker
//! thread; a retried (previously panicked) attempt therefore reuses
//! scratch a failed attempt touched. This gate drives *real* simulation
//! cells through the runner under injected faults and asserts every
//! surviving record is byte-identical to the fault-free campaign — the
//! optimization's equivalence oracle extended to the recovery paths.

#![cfg(feature = "chaos")]

use jsonio::Json;
use runner::chaos::{self, ChaosPlan, Fault};
use runner::{Cell, CellSpec, RunReport, Runner};
use sim_core::{
    DurationModel, FreezeSchedule, PeriodicFreeze, SimDuration, SimTime, TriggerPolicy,
};

/// One real engine cell: a 4-rank EP-shaped job with SMIs on half the
/// nodes, so the calendar queue, the unfreeze cursor cache, and the
/// arena are all on the executed path. Deterministic given `i`.
fn engine_cell(i: u64) -> Cell {
    Cell::fallible(
        CellSpec {
            experiment: "chaos-engine".into(),
            cell: format!("c{i}"),
            params: Json::obj(vec![("i", Json::U64(i))]),
            seed: 7,
            reps: 1,
        },
        move || {
            let spec =
                mpi_sim::ClusterSpec::wyeast(4, 1, false).map_err(|e| Json::Str(e.to_string()))?;
            let progs: Vec<mpi_sim::RankProgram> = (0..4u64)
                .map(|r| {
                    mpi_sim::RankProgram::new(vec![
                        mpi_sim::Op::Bcast { root: 0, bytes: 64 },
                        mpi_sim::Op::Compute(SimDuration::from_millis(20 + 3 * r + i)),
                        mpi_sim::Op::Alltoall { bytes_per_pair: 2048 },
                        mpi_sim::Op::Compute(SimDuration::from_millis(10 + r)),
                        mpi_sim::Op::Allreduce { bytes: 16 },
                    ])
                })
                .collect();
            let mut nodes = nas::quiet_nodes(&spec);
            for (n, node) in nodes.iter_mut().enumerate() {
                if n % 2 == 0 {
                    node.schedule = FreezeSchedule::periodic(PeriodicFreeze {
                        first_trigger: SimTime::from_millis(1 + i),
                        period: SimDuration::from_millis(16),
                        durations: DurationModel::short_smi(),
                        policy: TriggerPolicy::SkipWhileFrozen,
                        seed: 100 + i,
                    });
                }
            }
            let net = mpi_sim::NetworkParams::gigabit_cluster();
            let out =
                mpi_sim::run(&spec, &nodes, &progs, &net).map_err(|e| Json::Str(e.to_string()))?;
            Ok(Json::obj(vec![
                ("i", Json::U64(i)),
                ("seconds_micros", Json::U64((out.seconds() * 1e6).round() as u64)),
            ]))
        },
    )
}

fn campaign(n: u64) -> Vec<Cell> {
    (0..n).map(engine_cell).collect()
}

/// A runner wired the way `smi-lab` wires it: no cache (every cell
/// executes) and the engine perf probe installed, so the telemetry
/// harvest runs on exactly the instrumented path the CLI uses.
fn engine_runner(jobs: usize) -> Runner {
    let mut r = Runner::new(jobs);
    r.cache_mode = runner::CacheMode::Off;
    r.verbose = false;
    r.perf_probe = Some(std::sync::Arc::new(|| {
        let p = sim_core::perf::take();
        runner::EnginePerf {
            events_popped: p.events_popped,
            queue_peak: p.queue_peak,
            runs: p.runs,
        }
    }));
    r
}

fn run(jobs: usize, cells: Vec<Cell>) -> RunReport {
    engine_runner(jobs).run("chaos-engine", cells)
}

#[test]
fn retried_engine_cells_reuse_scratch_and_stay_byte_identical() {
    chaos::quiet_injected_panics();
    let reference = run(2, campaign(12));
    assert_eq!(reference.cells_failed, 0, "fault-free engine campaign is clean");
    assert!(reference.engine.events_popped > 0, "probe harvested real engine work");

    // Transient faults on three cells: each panics once mid-campaign,
    // then its retry runs on a worker whose arena and thread-local perf
    // counters were already dirtied by other cells.
    let mut plan = ChaosPlan::calm(5);
    for c in ["c2", "c7", "c11"] {
        plan.pinned.push((c.into(), Fault::PanicFirst(1)));
    }
    let report = run(2, chaos::afflict(&plan, campaign(12)));
    assert_eq!(report.cells_failed, 0);
    assert_eq!(report.retries, 3);
    assert_eq!(
        report.records_jsonl(),
        reference.records_jsonl(),
        "retried engine cells must reproduce the fault-free bytes"
    );
}

#[test]
fn seeded_fault_schedules_never_perturb_surviving_engine_records() {
    chaos::quiet_injected_panics();
    let reference = run(4, campaign(16));
    let reference_records: Vec<Option<String>> =
        reference.outcomes.iter().map(|o| o.record()).collect();

    quickprop::check("engine_fault_schedule_equivalence", 4, |g| {
        let plan = ChaosPlan {
            seed: g.u64(0..u64::MAX),
            transient_per_mille: g.u32(0..300),
            permanent_per_mille: g.u32(0..100),
            straggler_per_mille: g.u32(0..100),
            abort_per_mille: 0, // process faults need isolated mode
            hang_per_mille: 0,
            transient_attempts: g.u32(1..3),
            straggle_millis: 1,
            pinned: Vec::new(),
        };
        let report = run(4, chaos::afflict(&plan, campaign(16)));
        assert_eq!(report.outcomes.len(), 16);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            match outcome.record() {
                Some(record) => assert_eq!(
                    Some(&record),
                    reference_records[i].as_ref(),
                    "surviving engine cell c{i} diverged (plan {plan:?})"
                ),
                None => assert!(outcome.failed(), "only quarantined cells lack records"),
            }
        }
    });
}

#[test]
fn perf_probe_attributes_work_only_to_completed_runs() {
    chaos::quiet_injected_panics();
    let quiet = run(1, campaign(6));
    // One run per cell, every event accounted to a completed run.
    assert_eq!(quiet.engine.runs, 6);
    assert!(quiet.engine.events_popped > 0);
    assert!(quiet.engine.queue_peak > 0);

    // A permanently faulted cell burns its retry budget without ever
    // reaching the engine: the harvested totals must not change shape —
    // still one completed run per surviving cell.
    let mut plan = ChaosPlan::calm(9);
    plan.pinned.push(("c3".into(), Fault::PanicAlways));
    let report = run(1, chaos::afflict(&plan, campaign(6)));
    assert_eq!(report.cells_failed, 1);
    assert_eq!(report.engine.runs, 5, "quarantined cell contributes no completed run");
    assert!(report.engine.events_popped < quiet.engine.events_popped);
}
