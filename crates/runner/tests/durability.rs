//! Crash-consistency under injected filesystem faults: whatever a fault
//! plan does to the store — torn writes, ENOSPC, EIO, rename failures,
//! dropped fsyncs, short reads — surviving records stay byte-identical
//! to a fault-free run, a clean `--resume` recomputes exactly the lost
//! cells, and `fsck --repair` restores the store to Clean. (The SIGKILL
//! family is covered by `journal_resume.rs` and the planted-damage fsck
//! unit test; here every *filesystem* family gets the same treatment.)

use jsonio::Json;
use runner::store;
use runner::vfs::{FaultKind, FaultPlan, OpKind, Vfs};
use runner::{Cell, CellSpec, RunStatus, Runner};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("smi-lab-durability-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp cache dir");
    dir
}

fn campaign(range: std::ops::Range<u64>, executions: &Arc<AtomicU64>) -> Vec<Cell> {
    range
        .map(|i| {
            let executions = Arc::clone(executions);
            Cell::new(
                CellSpec {
                    experiment: "durability".into(),
                    cell: format!("c{i}"),
                    params: Json::obj(vec![("i", Json::U64(i))]),
                    seed: 7,
                    reps: 1,
                },
                move || {
                    executions.fetch_add(1, Ordering::Relaxed);
                    Json::obj(vec![("value", Json::U64(i.wrapping_mul(0x9E37)))])
                },
            )
        })
        .collect()
}

fn runner_in(dir: &Path) -> Runner {
    let mut r = Runner::new(1);
    r.cache_dir = dir.to_path_buf();
    r.verbose = false;
    r
}

/// The fault-free record bytes every faulted scenario must reproduce.
fn reference_records(n: u64) -> String {
    let dir = tmp_dir("reference");
    let executions = Arc::new(AtomicU64::new(0));
    let report = runner_in(&dir).run("camp", campaign(0..n, &executions));
    assert_eq!(report.status(), RunStatus::Clean);
    let records = report.records_jsonl();
    let _ = std::fs::remove_dir_all(&dir);
    records
}

#[test]
fn enospc_storm_degrades_with_typed_counters_and_clean_rerun_recovers() {
    let dir = tmp_dir("enospc-storm");
    let executions = Arc::new(AtomicU64::new(0));
    let mut runner = runner_in(&dir);
    let plan = FaultPlan::parse("enospc=1000").expect("plan");
    runner.vfs = Vfs::faulty(plan);

    // Every store publish and journal append hits ENOSPC: the campaign
    // still drains with every payload intact, Degraded, faults counted.
    let report = runner.run("camp", campaign(0..6, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), 6, "faults never cost payloads");
    assert_eq!(report.status(), RunStatus::Degraded);
    assert!(report.cache_store_errors > 0, "every failed write must be counted");
    assert_eq!(report.store.puts, 0, "nothing was durably published");
    assert_eq!(report.records_jsonl(), reference_records(6), "records survive the storm");

    // A clean rerun recomputes everything the storm lost, byte-identically.
    let rerun = runner_in(&dir).run("camp", campaign(0..6, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), 12, "nothing was cached");
    assert_eq!(rerun.status(), RunStatus::Clean);
    assert_eq!(rerun.records_jsonl(), reference_records(6));
    assert!(store::fsck(&dir, false).is_clean(), "ENOSPC leaves no on-disk damage");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pinned_write_faults_lose_exactly_the_pinned_cells_and_resume_recomputes_them() {
    let dir = tmp_dir("pinned-writes");
    let executions = Arc::new(AtomicU64::new(0));
    let mut runner = runner_in(&dir);
    let mut plan = FaultPlan::default();
    // The first two store publishes fail; everything else lands.
    plan.pin(OpKind::Write, "", FaultKind::Enospc, 2);
    runner.vfs = Vfs::faulty(plan);

    let report = runner.run("camp", campaign(0..6, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), 6);
    assert_eq!(report.status(), RunStatus::Degraded);
    assert_eq!(report.cache_store_errors, 2, "exactly the pinned faults are counted");
    assert_eq!(report.store.puts, 4);

    // Resume recomputes exactly the two lost cells, byte-identically.
    let resumed = runner_in(&dir).run("camp", campaign(0..6, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), 8, "exactly the lost cells recompute");
    assert_eq!(resumed.store.hits, 4, "the surviving entries resume from the store");
    assert_eq!(resumed.status(), RunStatus::Clean);
    assert_eq!(resumed.records_jsonl(), reference_records(6));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_append_degrades_and_the_tail_is_swept_on_resume() {
    let dir = tmp_dir("torn-journal");
    let executions = Arc::new(AtomicU64::new(0));
    let mut runner = runner_in(&dir);
    let mut plan = FaultPlan::default();
    // Tear every journal append: the file ends in torn half-lines with
    // no intact line ever glued after them, the worst-case tail.
    plan.pin(OpKind::Append, ".jsonl", FaultKind::TornWrite, 4);
    runner.vfs = Vfs::faulty(plan);

    let report = runner.run("camp", campaign(0..4, &executions));
    assert_eq!(report.status(), RunStatus::Degraded);
    assert_eq!(report.cache_store_errors, 4, "every torn append is a counted disk fault");
    // The torn half-line is on disk now; fsck sees it...
    let audit = store::fsck(&dir, false);
    assert!(
        audit.findings.iter().any(|f| f.kind == store::FindingKind::TornJournalTail),
        "a torn journal tail must be a finding: {:?}",
        audit.findings
    );
    // ...and a resumed campaign truncates it at startup, under the lock.
    let resumed = runner_in(&dir).run("camp", campaign(0..4, &executions));
    assert!(resumed.journal_torn_bytes > 0, "startup must account the swept tail bytes");
    assert_eq!(resumed.status(), RunStatus::Clean);
    assert_eq!(resumed.records_jsonl(), reference_records(4));
    assert!(store::fsck(&dir, false).is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_rename_failure_leaves_prior_manifest_and_no_tmp_litter() {
    let dir = tmp_dir("manifest-rename");
    let executions = Arc::new(AtomicU64::new(0));
    let report = runner_in(&dir).run("camp", campaign(0..2, &executions));
    report.write_manifest(&dir).expect("fault-free manifest write");
    let manifest_path = dir.join("manifests").join("camp.json");
    let before = std::fs::read_to_string(&manifest_path).expect("manifest exists");

    let mut plan = FaultPlan::default();
    plan.pin(OpKind::Write, "manifests", FaultKind::RenameFail, 1);
    let vfs = Vfs::faulty(plan);
    let err = report.write_manifest_with(&vfs, &dir).expect_err("rename failure surfaces");
    assert!(err.to_string().contains("vfs injected"), "typed injected error: {err}");
    assert_eq!(
        std::fs::read_to_string(&manifest_path).expect("manifest still present"),
        before,
        "a failed publish must never damage the previous manifest"
    );
    let litter: Vec<_> = std::fs::read_dir(dir.join("manifests"))
        .expect("read manifests dir")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(litter.is_empty(), "no temp litter after a failed rename: {litter:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_fault_flood_trips_the_bypass_ladder_and_still_drains() {
    let dir = tmp_dir("bypass");
    let executions = Arc::new(AtomicU64::new(0));
    let mut runner = runner_in(&dir);
    runner.vfs = Vfs::faulty(FaultPlan::parse("enospc=1000").expect("plan"));
    runner.disk_fault_limit = 3;

    let report = runner.run("camp", campaign(0..8, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), 8, "bypass mode still computes every cell");
    assert_eq!(report.status(), RunStatus::Degraded);
    assert!(report.storage_bypass, "the ladder must trip past the limit");
    assert!(report.bypassed_writes > 0, "post-trip writes are skipped and counted");
    assert!(
        report.cache_store_errors >= 3 && report.cache_store_errors < 16,
        "after the trip, faults stop accumulating: {}",
        report.cache_store_errors
    );
    let m = report.manifest();
    let storage = m.get("storage").expect("manifest storage block");
    assert_eq!(storage.get("bypass").and_then(Json::as_bool), Some(true));
    assert_eq!(storage.get("disk_fault_limit").and_then(Json::as_u64), Some(3));
    assert_eq!(storage.get("bypassed_writes").and_then(Json::as_u64), Some(report.bypassed_writes));
    assert_eq!(report.records_jsonl(), reference_records(8), "bypass never alters records");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_campaigns_sharing_the_store_compute_overlapping_cells_once() {
    let dir = tmp_dir("dedup");
    let executions = Arc::new(AtomicU64::new(0));
    let alpha = runner_in(&dir).run("alpha", campaign(0..6, &executions));
    assert_eq!(alpha.store.puts, 6);
    assert_eq!(executions.load(Ordering::Relaxed), 6);

    // A *different* campaign overlapping on cells 3..6: the overlap is
    // served from the shared store and counted as cross-campaign dedup.
    let beta = runner_in(&dir).run("beta", campaign(3..9, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), 9, "overlapping cells computed exactly once");
    assert_eq!(beta.store.dedup_hits, 3, "the overlap is dedup, not local hits");
    assert_eq!(beta.store.hits, 0);
    assert_eq!(beta.store.puts, 3);
    let m = beta.manifest();
    let storage = m.get("storage").expect("manifest storage block");
    assert_eq!(storage.get("dedup_hits").and_then(Json::as_u64), Some(3));

    // Beta re-run: now everything is beta's own (indexed) — plain hits.
    let again = runner_in(&dir).run("beta", campaign(3..9, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), 9);
    assert_eq!(again.store.hits, 6);
    assert_eq!(again.store.dedup_hits, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn broken_stale_lock_is_recorded_in_the_manifest() {
    let dir = tmp_dir("lock-note");
    let executions = Arc::new(AtomicU64::new(0));
    let lock = runner::lockfile::CampaignLock::lock_path(&dir, "camp");
    std::fs::create_dir_all(lock.parent().expect("parent")).expect("mkdir");
    // Pid 4194304 exceeds the default Linux pid_max: a dead holder.
    std::fs::write(&lock, "4194304\n").expect("plant stale lock");

    let report = runner_in(&dir).run("camp", campaign(0..2, &executions));
    assert_eq!(report.status(), RunStatus::Clean, "a broken stale lock is not degradation");
    let broke = report.lock_broken.expect("the break must be recorded");
    assert_eq!(broke.holder_pid, Some(4_194_304));
    let m = report.manifest();
    let note = m.get("lock_broken").expect("manifest lock_broken note");
    assert_eq!(note.get("holder_pid").and_then(Json::as_u64), Some(4_194_304));
    assert!(note.get("age_seconds").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The headline property: under ANY random vfs fault plan, no surviving
/// record ever differs from the fault-free bytes, and `fsck --repair`
/// restores the store to Clean.
#[test]
fn quickprop_random_fault_plans_never_corrupt_records_and_fsck_restores_clean() {
    const CELLS: u64 = 50;
    let reference = reference_records(CELLS);
    let case = AtomicU64::new(0);
    quickprop::check("vfs-fault-plans-preserve-records", 8, |g| {
        let tag = format!("prop-{}", case.fetch_add(1, Ordering::Relaxed));
        let dir = tmp_dir(&tag);
        let executions = Arc::new(AtomicU64::new(0));
        let mut plan = FaultPlan::default();
        plan.seed = g.any_u64();
        plan.torn_permille = g.below(120) as u16;
        plan.short_read_permille = g.below(120) as u16;
        plan.enospc_permille = g.below(120) as u16;
        plan.eio_permille = g.below(80) as u16;
        plan.rename_fail_permille = g.below(120) as u16;
        plan.drop_fsync_permille = g.below(200) as u16;
        let mut runner = runner_in(&dir);
        runner.vfs = Vfs::faulty(plan);

        let faulted = runner.run("camp", campaign(0..CELLS, &executions));
        assert_eq!(faulted.cells_total, CELLS, "the campaign always drains");
        assert_eq!(faulted.records_jsonl(), reference, "no fault sequence may alter a record byte");

        // fsck repairs whatever the plan tore, and proves it re-scanning.
        store::fsck(&dir, true);
        let audit = store::fsck(&dir, false);
        assert!(audit.is_clean(), "fsck --repair must restore Clean: {:?}", audit.findings);

        // A clean rerun fills every hole; its records are the reference.
        let recovered = runner_in(&dir).run("camp", campaign(0..CELLS, &executions));
        assert_eq!(recovered.records_jsonl(), reference);
        assert_eq!(recovered.status(), RunStatus::Clean);
        let _ = std::fs::remove_dir_all(&dir);
    });
}
