//! Crash-safe resume: a campaign killed mid-flight (simulated by
//! truncating the completion journal and deleting the cache entries of
//! the cells that "never ran") resumes recomputing exactly the missing
//! cells, and the journal read-back accounts for the prior progress.

use jsonio::Json;
use runner::journal::{journal_path, Journal, Status};
use runner::{cache, Cell, CellSpec, Runner};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("smi-lab-journal-resume-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp cache dir");
    dir
}

fn campaign(n: u64, executions: &Arc<AtomicU64>) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            let executions = Arc::clone(executions);
            Cell::new(
                CellSpec {
                    experiment: "resume".into(),
                    cell: format!("c{i}"),
                    params: Json::obj(vec![("i", Json::U64(i))]),
                    seed: 99,
                    reps: 1,
                },
                move || {
                    executions.fetch_add(1, Ordering::Relaxed);
                    Json::obj(vec![("value", Json::U64(i * 7))])
                },
            )
        })
        .collect()
}

#[test]
fn sigkilled_campaign_resumes_recomputing_only_unjournaled_cells() {
    let dir = tmp_dir("sigkill");
    let executions = Arc::new(AtomicU64::new(0));
    const N: u64 = 10;
    const SURVIVED: usize = 4;

    // Serial so journal completion order is submission order — the
    // truncation below then maps to a known prefix of cells.
    let mut runner = Runner::new(1);
    runner.cache_dir = dir.clone();
    runner.verbose = false;
    let reference = runner.run("camp", campaign(N, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), N);

    // Simulate SIGKILL after the fourth cell completed: keep the first
    // four journal lines plus a torn fragment of the fifth (the one
    // write_all the kill interrupted), and erase the cache entries of
    // every cell past the fourth — at kill time they had not run.
    let jpath = journal_path(&dir, "camp");
    let text = std::fs::read_to_string(&jpath).expect("journal exists");
    assert_eq!(text.lines().count() as u64, N, "one journal line per cell");
    let mut kept: String = text.lines().take(SURVIVED).map(|l| format!("{l}\n")).collect();
    kept.push_str("{\"schema\":1,\"key\":\"00ab");
    std::fs::write(&jpath, kept).expect("truncate journal");
    for outcome in reference.outcomes.iter().skip(SURVIVED) {
        std::fs::remove_file(cache::entry_path(&dir, outcome.key)).expect("erase cache entry");
    }

    // Resume: only the un-journaled cells recompute.
    let resumed = runner.run("camp", campaign(N, &executions));
    assert_eq!(
        executions.load(Ordering::Relaxed),
        N + (N - SURVIVED as u64),
        "resume recomputes exactly the cells the kill lost"
    );
    assert_eq!(resumed.journal_prior_ok, SURVIVED as u64, "torn tail ignored, prefix counted");
    assert_eq!(resumed.cells_cached, SURVIVED as u64);
    assert_eq!(resumed.cells_failed, 0);
    assert_eq!(
        resumed.records_jsonl(),
        reference.records_jsonl(),
        "resumed campaign is byte-identical to the uninterrupted one"
    );

    // The healed journal now covers every cell again.
    let journal = Journal::load(&jpath);
    for outcome in &resumed.outcomes {
        assert_eq!(journal.status(outcome.key), Some(Status::Ok));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_accumulates_across_distinct_labels_independently() {
    let dir = tmp_dir("labels");
    let executions = Arc::new(AtomicU64::new(0));
    let mut runner = Runner::new(2);
    runner.cache_dir = dir.clone();
    runner.verbose = false;
    runner.run("alpha", campaign(3, &executions));
    runner.run("beta", campaign(3, &executions));
    assert!(journal_path(&dir, "alpha").is_file());
    assert!(journal_path(&dir, "beta").is_file());
    assert_eq!(Journal::load(&journal_path(&dir, "alpha")).len(), 3);
    // Same cells, same cache keys: beta's run hit the cache alpha warmed,
    // and journaled those hits in its own file.
    assert_eq!(executions.load(Ordering::Relaxed), 3);
    assert_eq!(Journal::load(&journal_path(&dir, "beta")).len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}
