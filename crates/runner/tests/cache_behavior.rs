//! Result-cache behavior: hits keyed on the full cell identity,
//! invalidation on any identity change, corrupted-entry recovery
//! (recompute and count — never panic, never return bad data), unique
//! temp-file naming under concurrent stores, and orphan sweeping.

use jsonio::Json;
use runner::cache::{cell_key, entry_path, load, store, sweep_orphans, Lookup};
use runner::{CacheMode, Cell, CellSpec, Runner};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("smi-lab-cache-behavior-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp cache dir");
    dir
}

fn spec(cell: &str, seed: u64, reps: u32) -> CellSpec {
    CellSpec {
        experiment: "table2".into(),
        cell: cell.into(),
        params: Json::obj(vec![("nodes", Json::U64(4)), ("jitter", Json::F64(0.004))]),
        seed,
        reps,
    }
}

fn payload(v: u64) -> Json {
    Json::obj(vec![("value", Json::U64(v))])
}

#[test]
fn store_then_load_round_trips() {
    let dir = tmp_dir("roundtrip");
    let s = spec("A-n4-r1", 20160816, 6);
    let key = cell_key("v1", &s);
    assert_eq!(load(&dir, key, "v1", &s), Lookup::Miss, "cold cache must miss");
    store(&dir, key, "v1", &s, &payload(42)).expect("store");
    assert_eq!(load(&dir, key, "v1", &s), Lookup::Hit(payload(42)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn any_identity_change_misses() {
    let dir = tmp_dir("invalidation");
    let s = spec("A-n4-r1", 20160816, 6);
    store(&dir, cell_key("v1", &s), "v1", &s, &payload(1)).expect("store");

    // Different code version, experiment, cell, params, seed, or reps each
    // produce a different key, so the stored entry is never found.
    let variants: Vec<CellSpec> = vec![
        spec("A-n4-r1", 20160817, 6),
        spec("A-n4-r1", 20160816, 2),
        spec("A-n8-r1", 20160816, 6),
        CellSpec { experiment: "table3".into(), ..spec("A-n4-r1", 20160816, 6) },
        CellSpec {
            params: Json::obj(vec![("nodes", Json::U64(8)), ("jitter", Json::F64(0.004))]),
            ..spec("A-n4-r1", 20160816, 6)
        },
    ];
    for v in &variants {
        let key = cell_key("v1", v);
        assert_eq!(load(&dir, key, "v1", v), Lookup::Miss, "variant {v:?} must miss");
    }
    assert_eq!(load(&dir, cell_key("v2", &s), "v2", &s), Lookup::Miss, "new code tag must miss");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_are_corrupt_not_panics() {
    let dir = tmp_dir("corruption");
    let s = spec("A-n4-r1", 20160816, 6);
    let key = cell_key("v1", &s);
    store(&dir, key, "v1", &s, &payload(7)).expect("store");
    let path = entry_path(&dir, key);

    for garbage in [
        "",                                // truncated to nothing
        "{\"schema\":1",                   // cut off mid-object
        "not json at all",                 // arbitrary bytes
        "{\"schema\":99}",                 // wrong schema version
        "[1,2,3]",                         // wrong shape entirely
        "{\"schema\":1,\"key\":\"0000\"}", // identity fields missing/wrong
    ] {
        std::fs::write(&path, garbage).expect("inject corruption");
        assert_eq!(
            load(&dir, key, "v1", &s),
            Lookup::Corrupt,
            "corrupt entry {garbage:?} must be distinguishable from a cold miss"
        );
        assert!(load(&dir, key, "v1", &s).into_payload().is_none());
    }

    // A tampered-but-correctly-resealed entry still fails the identity
    // check: flip one identity field, reseal so the frame is valid, and
    // the load must call it corrupt anyway.
    store(&dir, key, "v1", &s, &payload(7)).expect("store");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut entry = jsonio::checked::unseal(text.trim_end()).unwrap();
    if let Json::Obj(fields) = &mut entry {
        for (k, v) in fields.iter_mut() {
            if k == "seed" {
                *v = Json::U64(1);
            }
        }
    }
    std::fs::write(&path, jsonio::checked::seal(&entry)).unwrap();
    assert_eq!(load(&dir, key, "v1", &s), Lookup::Corrupt, "identity mismatch is corruption");

    // A single flipped payload byte inside an otherwise intact frame
    // fails the checksum — the torn-write detection the store rests on.
    store(&dir, key, "v1", &s, &payload(7)).expect("store");
    let sealed = std::fs::read_to_string(&path).unwrap();
    let flipped = sealed.replacen("\"value\":7", "\"value\":8", 1);
    assert_ne!(sealed, flipped, "the tamper must hit the payload");
    std::fs::write(&path, flipped).unwrap();
    assert_eq!(load(&dir, key, "v1", &s), Lookup::Corrupt, "checksum catches flipped bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runner_recomputes_through_corruption_and_repairs_the_entry() {
    let dir = tmp_dir("repair");
    let executions = Arc::new(AtomicU64::new(0));
    let make_cells = |executions: &Arc<AtomicU64>| {
        let executions = Arc::clone(executions);
        vec![Cell::new(spec("A-n4-r1", 1, 2), move || {
            executions.fetch_add(1, Ordering::Relaxed);
            payload(99)
        })]
    };
    let mut runner = Runner::new(1);
    runner.cache_dir = dir.clone();
    runner.verbose = false;

    let first = runner.run("cold", make_cells(&executions));
    assert_eq!(executions.load(Ordering::Relaxed), 1);
    let key = first.outcomes[0].key;

    // Corrupt the entry on disk: the next run must recompute (not panic,
    // not return garbage), count the corruption, and leave a valid entry.
    std::fs::write(entry_path(&dir, key), "garbage").unwrap();
    let second = runner.run("corrupted", make_cells(&executions));
    assert_eq!(executions.load(Ordering::Relaxed), 2, "corruption forces recompute");
    assert!(!second.outcomes[0].cached());
    assert_eq!(second.outcomes[0].payload(), Some(&payload(99)));
    assert_eq!(second.cache_load_corruptions, 1, "corruption must be counted, not silent");
    assert_eq!(second.status(), runner::RunStatus::Degraded);

    let third = runner.run("repaired", make_cells(&executions));
    assert_eq!(executions.load(Ordering::Relaxed), 2, "rewritten entry hits again");
    assert!(third.outcomes[0].cached());
    assert_eq!(third.status(), runner::RunStatus::Clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_off_never_touches_disk() {
    let dir = tmp_dir("off");
    let executions = Arc::new(AtomicU64::new(0));
    let mut runner = Runner::new(1);
    runner.cache_dir = dir.clone();
    runner.cache_mode = CacheMode::Off;
    runner.verbose = false;
    for _ in 0..2 {
        let executions = Arc::clone(&executions);
        runner.run(
            "off",
            vec![Cell::new(spec("A-n4-r1", 1, 2), move || {
                executions.fetch_add(1, Ordering::Relaxed);
                payload(5)
            })],
        );
    }
    assert_eq!(executions.load(Ordering::Relaxed), 2, "no-cache must recompute every run");
    let entries = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(entries, 0, "no-cache must not write entries (nor journals)");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_stores_of_the_same_key_never_collide_on_tmp_files() {
    let dir = tmp_dir("tmp-race");
    let s = spec("A-n4-r1", 20160816, 6);
    let key = cell_key("v1", &s);
    // The old scheme named the temp sibling `<entry>.tmp.<pid>` — every
    // thread in this process shared it, so one thread's rename raced
    // another's write. With per-store-unique names, N threads hammering
    // the same key all succeed and a valid entry survives.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..50 {
                    store(&dir, key, "v1", &s, &payload(42)).expect("racing store");
                }
            });
        }
    });
    assert_eq!(load(&dir, key, "v1", &s), Lookup::Hit(payload(42)));
    let shard = entry_path(&dir, key);
    let leftovers: Vec<_> = std::fs::read_dir(shard.parent().unwrap())
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "no temp file may survive the race: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn startup_sweep_removes_stranded_tmp_files_only() {
    let dir = tmp_dir("sweep");
    let s = spec("A-n4-r1", 20160816, 6);
    let key = cell_key("v1", &s);
    store(&dir, key, "v1", &s, &payload(3)).expect("store");
    let entry = entry_path(&dir, key);
    // Strand two orphans (a killed process's torn writes) next to the
    // real entry and one under manifests/.
    let orphan1 = entry.with_file_name("aaaa.json.tmp.12345.0");
    let orphan2 = entry.with_file_name("bbbb.json.tmp.12345.1");
    std::fs::write(&orphan1, "torn").unwrap();
    std::fs::write(&orphan2, "torn").unwrap();
    std::fs::create_dir_all(dir.join("manifests")).unwrap();
    std::fs::write(dir.join("manifests").join("x.json.tmp.1.2"), "torn").unwrap();

    assert_eq!(sweep_orphans(&dir), 3);
    assert!(!orphan1.exists() && !orphan2.exists());
    assert!(entry.exists(), "the real entry must survive the sweep");
    assert_eq!(load(&dir, key, "v1", &s), Lookup::Hit(payload(3)));
    assert_eq!(sweep_orphans(&dir), 0, "second sweep finds nothing");

    // A fresh Runner::run sweeps on startup and reports the count.
    let orphan3 = entry.with_file_name("cccc.json.tmp.9.9");
    std::fs::write(&orphan3, "torn").unwrap();
    let mut runner = Runner::new(1);
    runner.cache_dir = dir.clone();
    runner.verbose = false;
    let report = runner.run("sweep", vec![Cell::new(spec("A-n4-r1", 1, 1), || payload(1))]);
    assert_eq!(report.orphans_swept, 1);
    assert!(!orphan3.exists());
    let _ = std::fs::remove_dir_all(&dir);
}
