//! The chaos gate: every recovery path in the runner driven by the
//! seeded fault-injection harness. Compiled only with
//! `--features chaos` (ci.sh runs `cargo test -p runner --features
//! chaos`); the injected-panic hook keeps expected panic noise out of
//! the output.

#![cfg(feature = "chaos")]

use jsonio::Json;
use runner::chaos::{self, ChaosPlan, Fault};
use runner::{cache, Cell, CellSpec, RunReport, RunStatus, Runner};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smi-lab-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp cache dir");
    dir
}

fn campaign(n: u64, executions: &Arc<AtomicU64>) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            let executions = Arc::clone(executions);
            Cell::new(
                CellSpec {
                    experiment: "chaos".into(),
                    cell: format!("c{i}"),
                    params: Json::obj(vec![("i", Json::U64(i))]),
                    seed: 7,
                    reps: 1,
                },
                move || {
                    executions.fetch_add(1, Ordering::Relaxed);
                    Json::obj(vec![("value", Json::U64(i * 13))])
                },
            )
        })
        .collect()
}

fn run_no_cache(jobs: usize, cells: Vec<Cell>) -> RunReport {
    let mut runner = Runner::new(jobs);
    runner.cache_mode = runner::CacheMode::Off;
    runner.verbose = false;
    runner.run("chaos", cells)
}

#[test]
fn permanent_fault_quarantines_exactly_that_cell_and_exits_2() {
    chaos::quiet_injected_panics();
    let executions = Arc::new(AtomicU64::new(0));
    let mut plan = ChaosPlan::calm(1);
    plan.pinned.push(("c5".into(), Fault::PanicAlways));
    let dir = tmp_dir("permanent");
    let mut runner = Runner::new(4);
    runner.cache_dir = dir.clone();
    runner.verbose = false;
    let report = runner.run("chaos", chaos::afflict(&plan, campaign(12, &executions)));

    assert_eq!(report.cells_total, 12, "the campaign completes");
    assert_eq!(report.cells_failed, 1, "exactly one cell quarantined");
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].cell, "c5");
    assert_eq!(report.quarantined[0].attempts, runner.max_attempts);
    assert!(report.quarantined[0].message.contains("chaos: permanent fault"));
    assert_eq!(report.status(), RunStatus::Failed);
    assert_eq!(report.status().exit_code(), 2);

    // The manifest lists the failure, parseably.
    let path = report.write_manifest(&dir).expect("manifest");
    let manifest = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(manifest.get("status").unwrap().as_str(), Some("failed"));
    assert_eq!(manifest.get("cells_failed").unwrap().as_u64(), Some(1));
    let listed = manifest.get("quarantined").unwrap().as_array().unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].get("cell").unwrap().as_str(), Some("c5"));
    assert!(listed[0].get("panic").unwrap().as_str().unwrap().contains("permanent fault"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_fault_recovers_on_retry_exits_0_with_identical_records() {
    chaos::quiet_injected_panics();
    let executions = Arc::new(AtomicU64::new(0));
    let reference = run_no_cache(2, campaign(12, &executions));

    let mut plan = ChaosPlan::calm(1);
    plan.pinned.push(("c5".into(), Fault::PanicFirst(1))); // succeeds on attempt 2
    let report = run_no_cache(2, chaos::afflict(&plan, campaign(12, &executions)));
    assert_eq!(report.cells_failed, 0);
    assert_eq!(report.retries, 1);
    assert_eq!(report.outcomes[5].attempts(), 2);
    assert_eq!(report.status(), RunStatus::Clean);
    assert_eq!(report.status().exit_code(), 0);
    assert_eq!(report.records_jsonl(), reference.records_jsonl(), "byte-identical recovery");
}

#[test]
fn corrupted_and_truncated_entries_recompute_and_are_counted() {
    chaos::quiet_injected_panics();
    let dir = tmp_dir("rot");
    let executions = Arc::new(AtomicU64::new(0));
    let mut runner = Runner::new(2);
    runner.cache_dir = dir.clone();
    runner.verbose = false;
    let first = runner.run("chaos", campaign(6, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), 6);

    // Rot two entries on disk: one garbage overwrite, one torn tail.
    assert!(chaos::corrupt_entry(&dir, first.outcomes[1].key));
    assert!(chaos::truncate_entry(&dir, first.outcomes[4].key));

    let second = runner.run("chaos", campaign(6, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), 8, "exactly the two rotted cells recompute");
    assert_eq!(second.cells_cached, 4);
    assert_eq!(second.cache_load_corruptions, 2, "both corruptions observed");
    assert_eq!(second.status(), RunStatus::Degraded);
    assert_eq!(second.status().exit_code(), 1);
    assert_eq!(second.records_jsonl(), first.records_jsonl(), "payloads unharmed by rot");

    // The recompute rewrote valid entries: a third run is all hits, clean.
    let third = runner.run("chaos", campaign(6, &executions));
    assert_eq!(executions.load(Ordering::Relaxed), 8);
    assert_eq!(third.cells_cached, 6);
    assert_eq!(third.status(), RunStatus::Clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stranded_tmp_files_are_swept_before_the_run() {
    let dir = tmp_dir("torn");
    let executions = Arc::new(AtomicU64::new(0));
    let cells = campaign(3, &executions);
    let keys: Vec<_> =
        cells.iter().map(|c| cache::cell_key(&Runner::new(1).code_version, &c.spec)).collect();
    let torn = chaos::strand_tmp(&dir, keys[0]).expect("strand a torn write");
    assert!(torn.exists());

    let mut runner = Runner::new(1);
    runner.cache_dir = dir.clone();
    runner.verbose = false;
    let report = runner.run("chaos", cells);
    assert_eq!(report.orphans_swept, 1);
    assert!(!torn.exists(), "the torn write is gone");
    assert_eq!(report.status(), RunStatus::Clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stragglers_slow_the_campaign_but_never_change_its_bytes() {
    chaos::quiet_injected_panics();
    let executions = Arc::new(AtomicU64::new(0));
    let reference = run_no_cache(4, campaign(8, &executions));
    let mut plan = ChaosPlan::calm(3);
    plan.pinned.push(("c2".into(), Fault::Straggle(25)));
    plan.pinned.push(("c6".into(), Fault::Straggle(10)));
    let report = run_no_cache(4, chaos::afflict(&plan, campaign(8, &executions)));
    assert_eq!(report.cells_failed, 0);
    assert_eq!(report.status(), RunStatus::Clean);
    assert_eq!(report.records_jsonl(), reference.records_jsonl());
}

#[test]
fn invalid_cell_degrades_a_50_cell_campaign_without_touching_survivors() {
    // Satellite case: one cell rejected as invalid (the runner-side view
    // of a simulator `SimError`) quarantines with its structured reason,
    // the campaign exits 1 (degraded, not failed), and all 49 survivors
    // are byte-identical to the fault-free run.
    let executions = Arc::new(AtomicU64::new(0));
    let reference = run_no_cache(4, campaign(50, &executions));

    let mut plan = ChaosPlan::calm(11);
    plan.pinned.push(("c17".into(), Fault::Invalid));
    let report = run_no_cache(4, chaos::afflict(&plan, campaign(50, &executions)));

    assert_eq!(report.cells_total, 50, "the campaign drains past the invalid cell");
    assert_eq!(report.cells_invalid, 1);
    assert_eq!(report.cells_failed, 0);
    assert_eq!(report.retries, 0, "invalid verdicts are never retried");
    assert_eq!(report.status(), RunStatus::Degraded);
    assert_eq!(report.status().exit_code(), 1);

    let q = &report.quarantined[0];
    assert_eq!(q.cell, "c17");
    assert_eq!(q.attempts, 1);
    assert_eq!(q.reason.get("kind").and_then(|k| k.as_str()), Some("chaos-invalid"));

    // Survivors: byte-identical records, explicit hole at the victim.
    let reference_jsonl = reference.records_jsonl();
    let reference_lines: Vec<&str> =
        reference_jsonl.lines().filter(|l| !l.contains("\"c17\"")).collect();
    let report_jsonl = report.records_jsonl();
    let surviving_lines: Vec<&str> = report_jsonl.lines().collect();
    assert_eq!(surviving_lines.len(), 49);
    assert_eq!(
        surviving_lines, reference_lines,
        "survivors must be byte-identical to the fault-free run"
    );
    assert_eq!(report.payloads()[17], Json::Null, "the hole is explicit");
}

#[test]
fn fault_schedules_preserve_surviving_records() {
    chaos::quiet_injected_panics();
    // Satellite property: over a 50-cell campaign, ANY seeded fault
    // schedule yields records byte-identical to the fault-free run for
    // every surviving cell — faults may punch holes, never corrupt.
    let executions = Arc::new(AtomicU64::new(0));
    let reference = run_no_cache(4, campaign(50, &executions));
    let reference_records: Vec<Option<String>> =
        reference.outcomes.iter().map(|o| o.record()).collect();

    quickprop::check("fault_schedules_preserve_surviving_records", 10, |g| {
        let plan = ChaosPlan {
            seed: g.u64(0..u64::MAX),
            transient_per_mille: g.u32(0..300),
            permanent_per_mille: g.u32(0..150),
            straggler_per_mille: g.u32(0..100),
            abort_per_mille: 0, // process faults need isolated mode
            hang_per_mille: 0,
            transient_attempts: g.u32(1..3), // within the default budget of 3
            straggle_millis: 1,
            pinned: Vec::new(),
        };
        let report = run_no_cache(4, chaos::afflict(&plan, campaign(50, &executions)));
        assert_eq!(report.outcomes.len(), 50, "every schedule drains the campaign");
        for (i, outcome) in report.outcomes.iter().enumerate() {
            match outcome.record() {
                Some(record) => assert_eq!(
                    Some(&record),
                    reference_records[i].as_ref(),
                    "surviving cell c{i} must match the fault-free bytes (plan {plan:?})"
                ),
                None => assert!(
                    outcome.failed(),
                    "only quarantined cells may lack a record (plan {plan:?})"
                ),
            }
        }
        assert_eq!(report.cells_failed as usize, report.quarantined.len());
        assert_eq!(
            report.records_jsonl().lines().count() as u64,
            50 - report.cells_failed,
            "records skip exactly the quarantined cells"
        );
    });
}
