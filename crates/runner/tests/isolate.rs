//! The process-isolation gate: campaigns run under `--isolate`
//! semantics against a *real* worker subprocess (the `chaos-worker`
//! fixture binary), with real SIGKILLs, aborts, hangs, and deadline
//! kills — asserting the supervised path reproduces the in-process
//! path byte for byte and survives every process-level fault.

#![cfg(feature = "chaos")]

use jsonio::Json;
use runner::supervisor::IsolateConfig;
use runner::testcells::{fixture_cells, fixture_probe};
use runner::{journal, CacheMode, RunReport, RunStatus, Runner};
use std::path::PathBuf;

const SEED: u64 = 3;

fn worker_cmd(cells: u64, faults: &str) -> Vec<String> {
    let mut cmd = vec![
        env!("CARGO_BIN_EXE_chaos-worker").to_string(),
        "--cells".into(),
        cells.to_string(),
        "--seed".into(),
        SEED.to_string(),
    ];
    if !faults.is_empty() {
        cmd.push("--faults".into());
        cmd.push(faults.to_string());
    }
    cmd
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smi-lab-isolate-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp cache dir");
    dir
}

/// An isolated runner with test-friendly supervision timings.
fn isolated_runner(cells: u64, faults: &str, workers: usize) -> Runner {
    let mut cfg = IsolateConfig::new(worker_cmd(cells, faults));
    cfg.workers = workers;
    cfg.backoff_ms = 1;
    let mut r = Runner::new(workers);
    r.cache_mode = CacheMode::Off;
    r.verbose = false;
    r.isolate = Some(cfg);
    r
}

fn in_process(cells: u64) -> RunReport {
    let mut r = Runner::new(2);
    r.cache_mode = CacheMode::Off;
    r.verbose = false;
    r.perf_probe = Some(fixture_probe());
    r.run("iso", fixture_cells(cells, SEED))
}

#[test]
fn isolated_records_are_byte_identical_to_in_process() {
    let reference = in_process(8);
    assert_eq!(reference.status(), RunStatus::Clean);

    for workers in [1, 3] {
        let runner = isolated_runner(8, "", workers);
        let report = runner.run("iso", fixture_cells(8, SEED));
        assert_eq!(report.status(), RunStatus::Clean, "workers={workers}");
        assert_eq!(report.cells_total, 8);
        assert_eq!(
            report.records_jsonl(),
            reference.records_jsonl(),
            "isolated records must be byte-identical (workers={workers})"
        );
        // The worker's perf harvest crosses the wire: same engine totals
        // as the in-process probe (sum of (i+1)*100 for i in 0..8).
        assert_eq!(report.engine.events_popped, reference.engine.events_popped);
        assert_eq!(report.engine.events_popped, 3600);
        assert_eq!(report.engine.runs, 8);
        let iso = report.isolate.as_ref().expect("supervision accounting");
        assert_eq!(iso.workers.len(), workers);
        assert_eq!(iso.workers.iter().map(|w| w.cells_ok).sum::<u64>(), 8);
        assert_eq!(iso.workers.iter().map(|w| w.crashes).sum::<u64>(), 0);
    }
}

#[test]
fn sigkilled_worker_never_takes_down_the_campaign_and_resume_heals_it() {
    let reference = in_process(6);

    // Phase 1: the supervisor SIGKILLs its own worker every time c4 is
    // dispatched (a real `Child::kill`, not a simulated error), until
    // the cell's attempt budget quarantines it as worker-crash. The
    // worker also wedges on c4, pinning the kill/completion race: the
    // Done frame can never beat the SIGKILL.
    let dir = tmp_dir("kill-resume");
    let mut cfg = IsolateConfig::new(worker_cmd(6, "c4=hang"));
    cfg.workers = 2;
    cfg.backoff_ms = 1;
    cfg.respawn_budget = 5;
    cfg.kill_cells = vec!["c4".into()];
    let mut runner = Runner::new(2);
    runner.cache_dir = dir.clone();
    runner.verbose = false;
    runner.isolate = Some(cfg);
    let killed = runner.run("iso-kill", fixture_cells(6, SEED));
    assert_eq!(killed.status(), RunStatus::Degraded, "a crash degrades, never aborts");
    assert_eq!(killed.cells_crashed, 1);
    assert_eq!(killed.cells_total, 6, "the campaign drains past the kills");
    let q = &killed.quarantined[0];
    assert_eq!(q.cell, "c4");
    assert_eq!(q.reason.get("kind").and_then(Json::as_str), Some("worker-crash"));
    assert_eq!(q.attempts, runner.max_attempts);
    // Survivors are byte-identical to the fault-free run.
    let reference_jsonl = reference.records_jsonl();
    let surviving: Vec<&str> = reference_jsonl.lines().filter(|l| !l.contains("\"c4\"")).collect();
    let killed_jsonl = killed.records_jsonl();
    assert_eq!(killed_jsonl.lines().collect::<Vec<_>>(), surviving);
    // The deaths were journaled, so resume knows the cell was dispatched.
    let j = journal::Journal::load(&journal::journal_path(&dir, "iso-kill"));
    assert_eq!(j.status(killed.outcomes[4].key), Some(journal::Status::Crashed));

    // Phase 2: `--resume` without the kill. Only the quarantined cell
    // recomputes (survivors come from cache) and the campaign is Clean
    // with records byte-identical to the fault-free reference.
    let mut cfg = IsolateConfig::new(worker_cmd(6, ""));
    cfg.workers = 2;
    cfg.backoff_ms = 1;
    let mut runner = Runner::new(2);
    runner.cache_dir = dir.clone();
    runner.verbose = false;
    runner.isolate = Some(cfg);
    let resumed = runner.run("iso-kill", fixture_cells(6, SEED));
    assert_eq!(resumed.status(), RunStatus::Clean);
    assert_eq!(resumed.cells_cached, 5, "only the crashed cell recomputes");
    assert_eq!(resumed.journal_prior_ok, 5);
    assert_eq!(
        resumed.records_jsonl(),
        reference.records_jsonl(),
        "healed campaign must match the fault-free bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aborting_worker_burns_attempts_then_quarantines_only_its_cell() {
    // The worker calls `std::process::abort()` *inside* c2 on every
    // attempt — the supervisor sees only a dead pipe, exactly like a
    // segfault. The cell quarantines; every other cell survives.
    let reference = in_process(6);
    let mut runner = isolated_runner(6, "c2=abort", 2);
    if let Some(cfg) = runner.isolate.as_mut() {
        cfg.respawn_budget = 5;
    }
    let report = runner.run("iso-abort", fixture_cells(6, SEED));
    assert_eq!(report.status(), RunStatus::Degraded);
    assert_eq!(report.cells_crashed, 1);
    let q = &report.quarantined[0];
    assert_eq!(q.cell, "c2");
    assert_eq!(q.reason.get("kind").and_then(Json::as_str), Some("worker-crash"));
    assert_eq!(
        q.reason.get("cause").and_then(Json::as_str),
        Some("worker-exit"),
        "an abort presents as the worker exiting mid-cell"
    );
    let reference_jsonl = reference.records_jsonl();
    let surviving: Vec<&str> = reference_jsonl.lines().filter(|l| !l.contains("\"c2\"")).collect();
    let report_jsonl = report.records_jsonl();
    assert_eq!(report_jsonl.lines().collect::<Vec<_>>(), surviving);
}

#[test]
fn hung_worker_is_shot_by_the_watchdog() {
    // c1 wedges forever in the worker; only the supervisor's wall-clock
    // watchdog can end it. Wall time decides liveness here — never a
    // record byte: the surviving records are still byte-identical.
    let reference = in_process(4);
    let mut runner = isolated_runner(4, "c1=hang", 1);
    runner.max_attempts = 2;
    if let Some(cfg) = runner.isolate.as_mut() {
        cfg.watchdog_ms = 250;
        cfg.respawn_budget = 5;
    }
    let report = runner.run("iso-hang", fixture_cells(4, SEED));
    assert_eq!(report.status(), RunStatus::Degraded);
    assert_eq!(report.cells_crashed, 1);
    let q = &report.quarantined[0];
    assert_eq!(q.cell, "c1");
    assert_eq!(q.reason.get("kind").and_then(Json::as_str), Some("worker-crash"));
    assert_eq!(q.reason.get("cause").and_then(Json::as_str), Some("watchdog-timeout"));
    assert_eq!(q.attempts, 2, "each watchdog shot burns one ordinary attempt");
    let reference_jsonl = reference.records_jsonl();
    let surviving: Vec<&str> = reference_jsonl.lines().filter(|l| !l.contains("\"c1\"")).collect();
    let report_jsonl = report.records_jsonl();
    assert_eq!(report_jsonl.lines().collect::<Vec<_>>(), surviving);
}

#[test]
fn worker_panics_cross_the_pipe_with_unchanged_retry_semantics() {
    // A panic *inside the worker* must behave exactly like an in-process
    // panic: transient ones retry (same worker, no crash), permanent
    // ones quarantine as `failed` after the attempt budget.
    let reference = in_process(6);
    let transient = isolated_runner(6, "c3=panic1", 2).run("iso-panic", fixture_cells(6, SEED));
    assert_eq!(transient.status(), RunStatus::Clean);
    assert_eq!(transient.retries, 1);
    assert_eq!(transient.outcomes[3].attempts(), 2);
    assert_eq!(transient.records_jsonl(), reference.records_jsonl());
    let iso = transient.isolate.as_ref().expect("accounting");
    assert_eq!(iso.workers.iter().map(|w| w.crashes).sum::<u64>(), 0, "a panic is not a crash");

    let permanent = isolated_runner(6, "c3=panic", 2).run("iso-panic", fixture_cells(6, SEED));
    assert_eq!(permanent.status(), RunStatus::Failed, "a permanent panic still fails the run");
    assert_eq!(permanent.cells_failed, 1);
    assert!(permanent.quarantined[0].message.contains("chaos: permanent fault"));
}

#[test]
fn deadline_kills_are_deterministic_and_machine_readable() {
    // The golden deadline fixture: a 650-unit budget deadlines exactly
    // c6 (700 units) and c7 (800 units) — a pure function of cell
    // identity and budget, byte-stable across reruns.
    const GOLDEN_REASON_C6: &str = r#"{"kind":"deadline","budget_units":650,"spent_units":700}"#;

    let run_once = || {
        let mut runner = isolated_runner(8, "", 2);
        if let Some(cfg) = runner.isolate.as_mut() {
            cfg.deadline_units = 650;
        }
        runner.run("iso-deadline", fixture_cells(8, SEED))
    };
    let report = run_once();
    assert_eq!(report.status(), RunStatus::Degraded, "deadline kills degrade, never fail");
    assert_eq!(report.cells_deadline, 2);
    assert_eq!(report.cells_total, 8);
    let mut killed: Vec<&str> = report.quarantined.iter().map(|q| q.cell.as_str()).collect();
    killed.sort_unstable();
    assert_eq!(killed, ["c6", "c7"]);
    for q in &report.quarantined {
        assert_eq!(q.attempts, 1, "a deadline verdict is deterministic: never retried");
        assert_eq!(q.reason.get("kind").and_then(Json::as_str), Some("deadline"));
        assert_eq!(q.reason.get("budget_units").and_then(Json::as_u64), Some(650));
    }
    let c6 = report.quarantined.iter().find(|q| q.cell == "c6").expect("c6 quarantined");
    assert_eq!(c6.reason.to_string(), GOLDEN_REASON_C6, "golden machine-readable reason");
    assert_eq!(c6.message, "deadline: spent 700 work units over the 650-unit budget");

    // The manifest carries the quarantine with its budget, parseably.
    let m = report.manifest();
    assert_eq!(m.get("cells_deadline").and_then(Json::as_u64), Some(2));
    let listed = m.get("quarantined").and_then(Json::as_array).expect("quarantined list");
    let c6_m = listed
        .iter()
        .find(|q| q.get("cell").and_then(Json::as_str) == Some("c6"))
        .expect("c6 listed");
    assert_eq!(c6_m.get("reason").map(|r| r.to_string()), Some(GOLDEN_REASON_C6.to_string()));

    // Rerun: identical verdicts, identical surviving bytes.
    let again = run_once();
    assert_eq!(again.records_jsonl(), report.records_jsonl());
    assert_eq!(again.cells_deadline, 2);
    assert_eq!(
        again.quarantined.iter().map(|q| q.reason.to_string()).collect::<Vec<_>>(),
        report.quarantined.iter().map(|q| q.reason.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn mismatched_worker_catalog_is_a_structured_rejection() {
    // The worker holds a catalog seeded differently than the supervisor:
    // every cell's identity check fails in the worker and comes back as
    // a deterministic `unresolvable-cell` quarantine, not a crash loop.
    let mut cfg = IsolateConfig::new(vec![
        env!("CARGO_BIN_EXE_chaos-worker").to_string(),
        "--cells".into(),
        "4".into(),
        "--seed".into(),
        "999".into(),
    ]);
    cfg.backoff_ms = 1;
    let mut runner = Runner::new(1);
    runner.cache_mode = CacheMode::Off;
    runner.verbose = false;
    runner.isolate = Some(cfg);
    let report = runner.run("iso-mismatch", fixture_cells(4, SEED));
    assert_eq!(report.status(), RunStatus::Degraded);
    assert_eq!(report.cells_invalid, 4);
    for q in &report.quarantined {
        assert_eq!(
            q.reason.get("kind").and_then(Json::as_str),
            Some("unresolvable-cell"),
            "catalog mismatch must be a typed verdict"
        );
    }
    let iso = report.isolate.as_ref().expect("accounting");
    assert_eq!(iso.workers.iter().map(|w| w.crashes).sum::<u64>(), 0);
}
