//! Typed simulation errors — the validity contract of the engine stack.
//!
//! Every layer of the simulation path (`sim-core` → `machine` →
//! `mpi-sim`) reports malformed inputs and broken runtime invariants
//! through [`SimError`] instead of panicking, so a single bad cell in a
//! campaign degrades that cell (the runner quarantines it with a
//! machine-readable reason) rather than aborting the process.
//!
//! The taxonomy, from the caller's point of view:
//!
//! * [`SimError::InvalidSpec`] — the inputs were never a valid job
//!   (zero ranks, mismatched lengths, out-of-range peers, oversubscribed
//!   nodes, non-finite intensities). Detected up front, before any
//!   virtual time elapses.
//! * [`SimError::Deadlock`] — the job was shaped like a valid program
//!   but its communication never completes: the event queue drained with
//!   ranks still blocked. The error names every stuck rank and the
//!   operation it is parked on.
//! * [`SimError::Stalled`] — virtual time failed to advance across a
//!   bounded number of event rounds (a livelock guard; structurally
//!   unreachable for well-formed programs, but bounded so no input can
//!   hang the engine).
//! * [`SimError::InvariantViolation`] — the engine caught *itself*
//!   misbehaving (message conservation broken, a clock ran backwards, a
//!   freeze mapping lost coverage). Always a bug report, never a user
//!   error; the opt-in validate mode adds more of these checks.

use jsonio::{Json, ToJson};

/// What a blocked rank was waiting on when a deadlock was diagnosed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, jsonio::ToJson)]
pub enum BlockedOpKind {
    /// A rendezvous send waiting for the matching receive to be posted.
    Send,
    /// A posted receive waiting for the matching send.
    Recv,
}

/// One pending operation of a stuck rank in a [`SimError::Deadlock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, jsonio::ToJson)]
pub struct BlockedOp {
    /// The rank that is parked on this operation.
    pub rank: u32,
    /// Whether it is blocked sending or receiving.
    pub kind: BlockedOpKind,
    /// The peer rank it is waiting on.
    pub peer: u32,
    /// The message tag of the unmatched operation.
    pub tag: u64,
}

/// A typed simulation failure. See the [module docs](self) for the
/// taxonomy; `Display` renders a one-line human diagnosis and
/// [`SimError::reason_json`] a machine-readable record for manifests.
#[derive(Clone, Debug, PartialEq, jsonio::ToJson)]
pub enum SimError {
    /// The inputs do not describe a runnable job.
    InvalidSpec {
        /// Which input was malformed (e.g. `"cluster spec"`, `"rank 3"`).
        context: String,
        /// What about it was malformed.
        problem: String,
    },
    /// Communication can never complete: the event queue drained with
    /// ranks still blocked on unmatched operations.
    Deadlock {
        /// Every rank that had not finished its program, ascending.
        waiting_ranks: Vec<u32>,
        /// The unmatched operations the stuck ranks are parked on.
        blocked_ops: Vec<BlockedOp>,
    },
    /// A runtime invariant of the engine itself was violated — an engine
    /// bug surfaced as data instead of a panic.
    InvariantViolation {
        /// Short name of the invariant (e.g. `"message conservation"`).
        invariant: String,
        /// The observed violation.
        detail: String,
    },
    /// Virtual time failed to advance across the bounded event budget —
    /// the livelock guard that keeps any input from hanging the engine.
    Stalled {
        /// The virtual time the run was stuck at.
        at_nanos: u64,
        /// How many same-time event rounds were processed before giving up.
        rounds: u64,
    },
}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidSpec`].
    pub fn invalid(context: impl Into<String>, problem: impl Into<String>) -> SimError {
        SimError::InvalidSpec { context: context.into(), problem: problem.into() }
    }

    /// Convenience constructor for [`SimError::InvariantViolation`].
    pub fn invariant(invariant: impl Into<String>, detail: impl Into<String>) -> SimError {
        SimError::InvariantViolation { invariant: invariant.into(), detail: detail.into() }
    }

    /// The error's kind as a stable lowercase tag (used in manifests and
    /// log lines; independent of the `Display` wording).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::InvalidSpec { .. } => "invalid-spec",
            SimError::Deadlock { .. } => "deadlock",
            SimError::InvariantViolation { .. } => "invariant-violation",
            SimError::Stalled { .. } => "stalled",
        }
    }

    /// A machine-readable reason record for quarantine manifests:
    /// `{"kind": ..., "message": ..., "error": <structured self>}`.
    pub fn reason_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str(self.kind().to_string())),
            ("message", Json::Str(self.to_string())),
            ("error", self.to_json()),
        ])
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidSpec { context, problem } => {
                write!(f, "invalid spec: {context}: {problem}")
            }
            SimError::Deadlock { waiting_ranks, blocked_ops } => {
                write!(f, "deadlock: {} rank(s) stuck (", waiting_ranks.len())?;
                for (i, r) in waiting_ranks.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, ")")?;
                for op in blocked_ops {
                    let verb = match op.kind {
                        BlockedOpKind::Send => "send to",
                        BlockedOpKind::Recv => "recv from",
                    };
                    write!(f, "; rank {} blocked on {verb} {} tag {}", op.rank, op.peer, op.tag)?;
                }
                Ok(())
            }
            SimError::InvariantViolation { invariant, detail } => {
                write!(f, "invariant violated: {invariant}: {detail}")
            }
            SimError::Stalled { at_nanos, rounds } => {
                write!(
                    f,
                    "stalled: no virtual-time progress after {rounds} rounds at t={at_nanos}ns"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_blocked_ranks_and_ops() {
        let e = SimError::Deadlock {
            waiting_ranks: vec![0, 3],
            blocked_ops: vec![BlockedOp { rank: 0, kind: BlockedOpKind::Recv, peer: 3, tag: 7 }],
        };
        let s = e.to_string();
        assert!(s.contains("2 rank(s) stuck (0, 3)"), "{s}");
        assert!(s.contains("rank 0 blocked on recv from 3 tag 7"), "{s}");
    }

    #[test]
    fn reason_json_carries_kind_message_and_structure() {
        let e = SimError::invalid("cluster spec", "zero nodes");
        let r = e.reason_json();
        assert_eq!(r.get("kind").and_then(Json::as_str), Some("invalid-spec"));
        assert_eq!(
            r.get("message").and_then(Json::as_str),
            Some("invalid spec: cluster spec: zero nodes")
        );
        let structured = r.get("error").expect("structured error");
        assert!(structured.get("InvalidSpec").is_some(), "{structured:?}");
    }

    #[test]
    fn kinds_are_stable_tags() {
        let stalled = SimError::Stalled { at_nanos: 5, rounds: 100 };
        assert_eq!(stalled.kind(), "stalled");
        let dead = SimError::Deadlock { waiting_ranks: vec![], blocked_ops: vec![] };
        assert_eq!(dead.kind(), "deadlock");
        assert_eq!(SimError::invariant("clocks", "ran backwards").kind(), "invariant-violation");
    }
}
