//! Deterministic random number generation.
//!
//! Every stochastic element of the laboratory (SMI durations, phase
//! offsets, run-to-run jitter) is derived from a [`SimRng`] seeded from a
//! hierarchical path of labels, so that any experiment cell is exactly
//! reproducible in isolation: re-running "Table 2, class B, 8 nodes,
//! rep 3" produces the identical trace without replaying anything else.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, implemented
//! locally (no `rand` dependency) so results are stable forever and the
//! workspace stays hermetic.

/// SplitMix64 step, used for seeding and for stateless hashing of labels.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary byte string to a 64-bit value (FNV-1a folded through
/// SplitMix64). Used to derive child seeds from human-readable labels.
pub fn hash_label(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut s = h;
    splitmix64(&mut s)
}

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        // xoshiro must not start from the all-zero state; SplitMix64 never
        // produces four consecutive zeros, but be defensive anyway.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        SimRng { s }
    }

    /// Create a generator whose seed is derived from a parent seed and a
    /// label path, e.g. `SimRng::from_path(42, &["table2", "classB", "rep3"])`.
    pub fn from_path(root_seed: u64, path: &[&str]) -> Self {
        let mut seed = root_seed;
        for part in path {
            seed = seed.rotate_left(17) ^ hash_label(part.as_bytes());
            let mut sm = seed;
            seed = splitmix64(&mut sm);
        }
        SimRng::new(seed)
    }

    /// Derive an independent child generator from a label. The parent is
    /// not advanced, so children with distinct labels are stable even if
    /// the parent's own consumption pattern changes.
    pub fn child(&self, label: &str) -> SimRng {
        let mixed = self.s[0].rotate_left(23).wrapping_add(self.s[2].rotate_left(7))
            ^ hash_label(label.as_bytes());
        SimRng::new(mixed)
    }

    /// Next raw 64-bit output (xoshiro256++). Named for the generator
    /// convention; this type is deliberately not an `Iterator`.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Requires `lo <= hi`; returns `lo` when equal.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range: lo {lo} > hi {hi}");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's method. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // smi-lint: allow(panic-path): schedule-path callers clamp the bound
        // (`.max(1)` / validated specs); the assert guards direct API misuse.
        assert!(n > 0, "below(0) is meaningless");
        // Unbiased multiply-shift rejection.
        loop {
            let x = self.next();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        // smi-lint: allow(panic-path): schedule-path callers validate the
        // band first (`NoiseModel::validate` rejects min > max; saturating
        // scaling preserves the order); the assert guards API misuse.
        assert!(lo <= hi, "range_u64: lo {lo} > hi {hi}");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Standard normal sample (Box–Muller; one value per call, the
    /// companion value is discarded to keep the stream position simple).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, stddev: f64) -> f64 {
        assert!(stddev >= 0.0, "normal_with: negative stddev {stddev}");
        mean + stddev * self.normal()
    }

    /// A multiplicative jitter factor `max(floor, 1 + N(0, rel))`,
    /// modelling run-to-run measurement noise of relative scale `rel`.
    pub fn jitter(&mut self, rel: f64) -> f64 {
        self.normal_with(1.0, rel).max(0.5)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Fill a byte buffer with generator output (little-endian words).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_constructions() {
        let mut a = SimRng::new(12345);
        let mut b = SimRng::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn path_derivation_is_order_sensitive() {
        let mut a = SimRng::from_path(7, &["x", "y"]);
        let mut b = SimRng::from_path(7, &["y", "x"]);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn children_are_independent_of_parent_consumption() {
        let parent1 = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        let _ = parent2.next(); // advance one parent
                                // child() reads state, so consumption does change it; instead verify
                                // label sensitivity and determinism from identical states.
        let mut c1 = parent1.child("a");
        let mut c2 = SimRng::new(99).child("a");
        assert_eq!(c1.next(), c2.next());
        let mut c3 = parent1.child("b");
        assert_ne!(SimRng::new(99).child("a").next(), c3.next());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_near_half() {
        let mut r = SimRng::new(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = SimRng::new(5);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn range_u64_inclusive_endpoints() {
        let mut r = SimRng::new(6);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = r.range_u64(10, 12);
            assert!((10..=12).contains(&v));
            saw_lo |= v == 10;
            saw_hi |= v == 12;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn jitter_is_positive_and_centered() {
        let mut r = SimRng::new(8);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.jitter(0.01)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.005, "mean {mean}");
        for _ in 0..1000 {
            assert!(r.jitter(0.3) >= 0.5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SimRng::new(10);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn hash_label_distinguishes_labels() {
        assert_ne!(hash_label(b"alpha"), hash_label(b"beta"));
        assert_eq!(hash_label(b"alpha"), hash_label(b"alpha"));
    }
}
