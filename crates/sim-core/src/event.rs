//! A minimal discrete-event queue.
//!
//! The cluster simulator ([`mpi-sim`]) and the node scheduler
//! ([`machine`]) both advance time by repeatedly popping the earliest
//! pending event. Ties are broken by insertion order (FIFO), which keeps
//! simulations deterministic under equal timestamps.
//!
//! [`mpi-sim`]: ../../mpi_sim/index.html
//! [`machine`]: ../../machine/index.html

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of payloads with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_millis(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO + SimDuration::from_nanos(1), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
