//! A minimal discrete-event queue.
//!
//! The cluster simulator ([`mpi-sim`]) and the node scheduler
//! ([`machine`]) both advance time by repeatedly popping the earliest
//! pending event. Ties are broken by insertion order (FIFO), which keeps
//! simulations deterministic under equal timestamps.
//!
//! Internally this is a bucketed calendar queue tuned for the engine's
//! near-monotone event pattern: one *page* of [`NUM_BUCKETS`] buckets
//! spans a window of simulated time, events land in the bucket covering
//! their timestamp, and only the bucket currently being drained is kept
//! sorted (descending, so the earliest entry pops off the back in O(1)).
//! Events beyond the page accumulate in an overflow list; when the page
//! drains, the overflow is redistributed into a fresh page sized to its
//! actual time span. Every path orders by the unique `(time, seq)` pair,
//! so the pop stream is identical to the original binary-heap
//! implementation — `tests/queue_equivalence.rs` locks that equivalence
//! against a frozen copy of the old queue.
//!
//! [`mpi-sim`]: ../../mpi_sim/index.html
//! [`machine`]: ../../machine/index.html

use crate::time::SimTime;

/// Buckets per calendar page. A power of two keeps the page small enough
/// to scan cheaply while giving near-monotone workloads ~one bucket per
/// few events.
const NUM_BUCKETS: usize = 256;

/// Lifetime counters for one queue, reported into the run manifest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events popped since construction (or the last [`EventQueue::clear`]).
    pub pops: u64,
    /// Highest number of simultaneously pending events observed.
    pub peak_len: usize,
}

/// A time-ordered queue of payloads with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    /// The current page. Buckets before `cur` are empty; bucket `cur` is
    /// sorted descending by `(time, seq)`; buckets after `cur` are
    /// unsorted until the drain reaches them.
    buckets: Vec<Vec<Entry<T>>>,
    /// Events at or beyond the page end, unsorted.
    overflow: Vec<Entry<T>>,
    /// Index of the bucket currently being drained.
    cur: usize,
    /// Simulated time at the start of the page, in nanoseconds.
    page_start: u64,
    /// Width of one bucket in nanoseconds; `0` means no page is seeded
    /// yet (every push goes to `overflow` until the first pop).
    bucket_ns: u64,
    /// Events currently stored in `buckets`.
    in_page: usize,
    /// Next insertion sequence number (the FIFO tie-break).
    seq: u64,
    pops: u64,
    peak_len: usize,
}

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> Entry<T> {
    /// The unique total-order key: time first, insertion order second.
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Sort a bucket descending by `(time, seq)` so the earliest entry is at
/// the back. Keys are unique, so unstable sorting is deterministic.
fn sort_descending<T>(bucket: &mut [Entry<T>]) {
    bucket.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            cur: 0,
            page_start: 0,
            bucket_ns: 0,
            in_page: 0,
            seq: 0,
            pops: 0,
            peak_len: 0,
        }
    }

    /// First nanosecond no longer covered by the current page.
    fn page_end(&self) -> u64 {
        self.page_start.saturating_add(self.bucket_ns.saturating_mul(NUM_BUCKETS as u64))
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { time, seq, payload };
        let t = time.as_nanos();
        if self.bucket_ns == 0 || t >= self.page_end() {
            self.overflow.push(entry);
        } else {
            // Bucket covering `t`; times before the page clamp to 0. A
            // landing spot at or behind the drain point goes into the
            // sorted current bucket so it still pops in key order.
            let idx = ((t.saturating_sub(self.page_start)) / self.bucket_ns) as usize;
            let idx = idx.min(NUM_BUCKETS - 1);
            if idx <= self.cur {
                if let Some(bucket) = self.buckets.get_mut(self.cur) {
                    let pos = bucket.partition_point(|e| e.key() > entry.key());
                    bucket.insert(pos, entry);
                }
            } else if let Some(bucket) = self.buckets.get_mut(idx) {
                bucket.push(entry);
            }
            self.in_page += 1;
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    /// Rebuild the page from the overflow list: the new page starts at
    /// the earliest overflow time and its bucket width is sized so the
    /// whole overflow span fits in one page.
    fn reseed(&mut self) {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for e in &self.overflow {
            let t = e.time.as_nanos();
            min = min.min(t);
            max = max.max(t);
        }
        self.page_start = min;
        self.bucket_ns = ((max - min) / NUM_BUCKETS as u64) + 1;
        self.cur = 0;
        for e in self.overflow.drain(..) {
            let idx = ((e.time.as_nanos() - min) / self.bucket_ns) as usize;
            let idx = idx.min(NUM_BUCKETS - 1);
            if let Some(bucket) = self.buckets.get_mut(idx) {
                bucket.push(e);
                self.in_page += 1;
            }
        }
        if let Some(bucket) = self.buckets.get_mut(0) {
            sort_descending(bucket);
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        loop {
            if let Some(e) = self.buckets.get_mut(self.cur).and_then(Vec::pop) {
                self.in_page -= 1;
                self.pops += 1;
                return Some((e.time, e.payload));
            }
            if self.in_page == 0 {
                if self.overflow.is_empty() {
                    return None;
                }
                self.reseed();
                continue;
            }
            // Advance the drain point to the next occupied bucket and
            // sort it; `in_page > 0` guarantees one exists.
            let mut next = self.cur + 1;
            while next < NUM_BUCKETS {
                match self.buckets.get_mut(next) {
                    Some(bucket) if !bucket.is_empty() => {
                        sort_descending(bucket);
                        self.cur = next;
                        break;
                    }
                    _ => next += 1,
                }
            }
            if next >= NUM_BUCKETS {
                // Bookkeeping can only reach here if `in_page` drifted
                // from the buckets' true contents; resynchronize rather
                // than loop (total: no panic on the strict path).
                self.in_page = 0;
            }
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The sorted current bucket ends with the page's earliest entry;
        // every other occupied bucket (and the overflow) is later.
        if let Some(e) = self.buckets.get(self.cur).and_then(|b| b.last()) {
            return Some(e.time);
        }
        if self.in_page > 0 {
            return self
                .buckets
                .iter()
                .skip(self.cur)
                .flatten()
                .min_by_key(|e| e.key())
                .map(|e| e.time);
        }
        self.overflow.iter().min_by_key(|e| e.key()).map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_page + self.overflow.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all pending events and reset the lifetime counters, keeping
    /// allocated bucket capacity (arenas reuse queues across runs).
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.cur = 0;
        self.page_start = 0;
        self.bucket_ns = 0;
        self.in_page = 0;
        self.seq = 0;
        self.pops = 0;
        self.peak_len = 0;
    }

    /// Lifetime counters since construction or the last [`clear`].
    ///
    /// [`clear`]: EventQueue::clear
    pub fn stats(&self) -> QueueStats {
        QueueStats { pops: self.pops, peak_len: self.peak_len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_millis(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO + SimDuration::from_nanos(1), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_behind_the_drain_point_pops_first() {
        let mut q = EventQueue::new();
        for ms in [10u64, 500, 900] {
            q.push(SimTime::from_millis(ms), ms);
        }
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 10)));
        // Earlier than everything still pending, later than the last pop.
        q.push(SimTime::from_millis(20), 20);
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 20)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(500), 500)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(900), 900)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn extreme_times_keep_order_and_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(u64::MAX), 1);
        q.push(SimTime::ZERO, 0);
        q.push(SimTime::from_nanos(u64::MAX), 2);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 0)));
        // Same u64::MAX timestamp across page and overflow: FIFO holds.
        q.push(SimTime::from_nanos(u64::MAX), 3);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(u64::MAX), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(u64::MAX), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(u64::MAX), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stats_count_pops_and_peak() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats(), QueueStats::default());
        for i in 0..10u64 {
            q.push(SimTime::from_micros(i), i);
        }
        assert_eq!(q.stats().peak_len, 10);
        let _ = q.pop();
        let _ = q.pop();
        assert_eq!(q.stats().pops, 2);
        assert_eq!(q.stats().peak_len, 10, "peak is a high-water mark");
        q.clear();
        assert_eq!(q.stats(), QueueStats::default(), "clear resets counters");
    }
}
