//! Descriptive statistics for experiment results.
//!
//! The paper reports six-run means per cell and (for the multithreaded
//! study) run-to-run variance, so the harness needs means, sample
//! standard deviations, confidence intervals, geometric means (for the
//! UnixBench index) and simple linear regression (for slope-of-impact
//! charts).

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        // smi-lint: allow(panic-path): reached only through name-conservative
        // `.push(` resolution (simulation paths push to Vecs, not
        // Accumulators); real callers are analysis-side with finite inputs.
        assert!(x.is_finite(), "Accumulator::push: non-finite observation {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; zero if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); zero for fewer than two points.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; NaN if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; NaN if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the 95 % confidence interval on the mean, using
    /// Student's t for small samples.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let t = t_critical_95(self.n - 1);
        t * self.stddev() / (self.n as f64).sqrt()
    }

    /// Coefficient of variation (σ/µ); zero if the mean is zero.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m.abs()
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Two-sided 95 % critical value of Student's t with `df` degrees of
/// freedom (tabulated for small df, 1.96 asymptote beyond 30).
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 31] = [
        f64::NAN,
        12.706,
        4.303,
        3.182,
        2.776,
        2.571,
        2.447,
        2.365,
        2.306,
        2.262,
        2.228,
        2.201,
        2.179,
        2.160,
        2.145,
        2.131,
        2.120,
        2.110,
        2.101,
        2.093,
        2.086,
        2.080,
        2.074,
        2.069,
        2.064,
        2.060,
        2.056,
        2.052,
        2.048,
        2.045,
        2.042,
    ];
    if df == 0 {
        f64::NAN
    } else if (df as usize) < TABLE.len() {
        TABLE[df as usize]
    } else {
        1.96
    }
}

/// Arithmetic mean of a slice; zero if empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation of a slice.
pub fn stddev(xs: &[f64]) -> f64 {
    let mut acc = Accumulator::new();
    for &x in xs {
        acc.push(x);
    }
    acc.stddev()
}

/// Geometric mean of strictly positive values; the UnixBench index is a
/// geometric mean of per-test ratios.
///
/// # Panics
/// Panics if any value is non-positive or the slice is empty.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric_mean of an empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric_mean: non-positive value {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Percentile via linear interpolation between closest ranks; `q` in `[0,1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "percentile: q {q} outside [0,1]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "percentile input must be sorted");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Ordinary least squares fit `y = slope·x + intercept`.
///
/// Returns `(slope, intercept, r_squared)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "linear_fit: mismatched lengths");
    assert!(xs.len() >= 2, "linear_fit needs at least two points");
    let n = xs.len() as f64;
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    assert!(sxx > 0.0, "linear_fit: degenerate x values");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    let _ = n;
    (slope, intercept, r2)
}

/// Relative change `(new − base) / base`, in percent — the paper's "%"
/// columns. Returns zero when the base is zero.
pub fn percent_change(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 32/7.
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..20] {
            left.push(x);
        }
        for &x in &xs[20..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
        let empty = Accumulator::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn ci95_of_six_runs() {
        // n=6 => df=5 => t=2.571.
        let mut acc = Accumulator::new();
        for x in [10.0, 10.2, 9.8, 10.1, 9.9, 10.0] {
            acc.push(x);
        }
        let hw = acc.ci95_half_width();
        let expected = 2.571 * acc.stddev() / 6f64.sqrt();
        assert!((hw - expected).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let (m, b, r2) = linear_fit(&xs, &ys);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percent_change_matches_paper_convention() {
        // Table 1, class A, 16 ranks: 48.51 -> 95.23 is +96.31 %.
        let pc = percent_change(48.51, 95.23);
        assert!((pc - 96.31).abs() < 0.01, "{pc}");
        assert_eq!(percent_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn t_table_endpoints() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(5) - 2.571).abs() < 1e-9);
        assert_eq!(t_critical_95(1000), 1.96);
        assert!(t_critical_95(0).is_nan());
    }

    #[test]
    fn cv_and_slice_helpers() {
        let xs = [1.0, 2.0, 3.0];
        assert!((mean(&xs) - 2.0).abs() < 1e-12);
        assert!((stddev(&xs) - 1.0).abs() < 1e-12);
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!((acc.cv() - 0.5).abs() < 1e-12);
    }
}
