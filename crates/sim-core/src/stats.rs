//! Descriptive statistics for experiment results.
//!
//! The paper reports six-run means per cell and (for the multithreaded
//! study) run-to-run variance, so the harness needs means, sample
//! standard deviations, confidence intervals, geometric means (for the
//! UnixBench index) and simple linear regression (for slope-of-impact
//! charts).

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        // smi-lint: allow(panic-path): reached only through name-conservative
        // `.push(` resolution (simulation paths push to Vecs, not
        // Accumulators); real callers are analysis-side with finite inputs.
        assert!(x.is_finite(), "Accumulator::push: non-finite observation {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; zero if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); zero for fewer than two points.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; NaN if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; NaN if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the 95 % confidence interval on the mean, using
    /// Student's t for small samples.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let t = t_critical_95(self.n - 1);
        t * self.stddev() / (self.n as f64).sqrt()
    }

    /// Coefficient of variation (σ/µ); zero if the mean is zero.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m.abs()
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Two-sided 95 % critical value of Student's t with `df` degrees of
/// freedom (tabulated for small df, 1.96 asymptote beyond 30).
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 31] = [
        f64::NAN,
        12.706,
        4.303,
        3.182,
        2.776,
        2.571,
        2.447,
        2.365,
        2.306,
        2.262,
        2.228,
        2.201,
        2.179,
        2.160,
        2.145,
        2.131,
        2.120,
        2.110,
        2.101,
        2.093,
        2.086,
        2.080,
        2.074,
        2.069,
        2.064,
        2.060,
        2.056,
        2.052,
        2.048,
        2.045,
        2.042,
    ];
    if df == 0 {
        f64::NAN
    } else if (df as usize) < TABLE.len() {
        TABLE[df as usize]
    } else {
        1.96
    }
}

/// Arithmetic mean of a slice; zero if empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation of a slice.
pub fn stddev(xs: &[f64]) -> f64 {
    let mut acc = Accumulator::new();
    for &x in xs {
        acc.push(x);
    }
    acc.stddev()
}

/// Geometric mean of strictly positive values; the UnixBench index is a
/// geometric mean of per-test ratios.
///
/// # Panics
/// Panics if any value is non-positive or the slice is empty.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric_mean of an empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric_mean: non-positive value {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Percentile via linear interpolation between closest ranks; `q` in `[0,1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "percentile: q {q} outside [0,1]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "percentile input must be sorted");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Ordinary least squares fit `y = slope·x + intercept`.
///
/// Returns `(slope, intercept, r_squared)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "linear_fit: mismatched lengths");
    assert!(xs.len() >= 2, "linear_fit needs at least two points");
    let n = xs.len() as f64;
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    assert!(sxx > 0.0, "linear_fit: degenerate x values");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    let _ = n;
    (slope, intercept, r2)
}

/// Relative change `(new − base) / base`, in percent — the paper's "%"
/// columns. Returns zero when the base is zero.
pub fn percent_change(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

// ---------------------------------------------------------------------------
// Exact streaming moments
// ---------------------------------------------------------------------------

/// Limb count of the fixed-point superaccumulator. Bit index `i` carries
/// weight `2^(i − 1074)`; indices `0..=2097` cover every finite `f64`
/// (`2^-1074` through just under `2^1024`), and the remaining ~78 bits
/// are carry headroom — overflow would need more than `2^78` addends.
const EXACT_SUM_LIMBS: usize = 34;

/// A Kulisch-style superaccumulator: sums `f64`s *exactly*, in a
/// fixed-point register wide enough for the whole double range.
///
/// Unlike floating-point (or compensated) summation, fixed-point
/// addition is associative and commutative, so any parallel split or
/// merge order produces bit-identical state — the property the adaptive
/// sampler's deterministic merges are built on. Positive and negative
/// addends accumulate in separate magnitude registers; `value()`
/// subtracts them exactly and rounds once, to nearest-even, exactly as
/// IEEE 754 would round the true real-number sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactSum {
    pos: [u64; EXACT_SUM_LIMBS],
    neg: [u64; EXACT_SUM_LIMBS],
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactSum {
    /// The empty (zero) sum.
    pub fn new() -> Self {
        ExactSum { pos: [0; EXACT_SUM_LIMBS], neg: [0; EXACT_SUM_LIMBS] }
    }

    /// Add one finite `f64` exactly.
    pub fn add(&mut self, x: f64) {
        // smi-lint: allow(panic-path): analysis-side statistics kernel;
        // measurement inputs are simulated seconds, always finite.
        assert!(x.is_finite(), "ExactSum::add: non-finite addend {x}");
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as u32;
        let frac = bits & ((1u64 << 52) - 1);
        // value = mantissa · 2^(offset − 1074)
        let (mantissa, offset) = if exp == 0 { (frac, 0) } else { (frac | (1u64 << 52), exp - 1) };
        if mantissa == 0 {
            return; // ±0.0
        }
        let reg = if bits >> 63 == 1 { &mut self.neg } else { &mut self.pos };
        let limb = (offset / 64) as usize;
        let shift = offset % 64;
        let wide = (mantissa as u128) << shift;
        add_into(reg, limb, wide as u64);
        add_into(reg, limb + 1, (wide >> 64) as u64);
    }

    /// Add the product `a·b` exactly (two-product via fused
    /// multiply-add). Exact whenever `a·b` neither overflows nor falls
    /// into the subnormal range — true for all simulated durations.
    pub fn add_product(&mut self, a: f64, b: f64) {
        let hi = a * b;
        let lo = a.mul_add(b, -hi);
        self.add(hi);
        self.add(lo);
    }

    /// Merge another exact sum into this one. Limb-wise integer
    /// addition: associative, commutative, and therefore split-order
    /// independent bit-for-bit.
    pub fn merge(&mut self, other: &ExactSum) {
        merge_reg(&mut self.pos, &other.pos);
        merge_reg(&mut self.neg, &other.neg);
    }

    /// The exact sum, rounded once to the nearest `f64` (ties to even).
    pub fn value(&self) -> f64 {
        let mut mag = [0u64; EXACT_SUM_LIMBS];
        let negative = match cmp_reg(&self.pos, &self.neg) {
            core::cmp::Ordering::Equal => return 0.0,
            core::cmp::Ordering::Greater => {
                sub_reg(&mut mag, &self.pos, &self.neg);
                false
            }
            core::cmp::Ordering::Less => {
                sub_reg(&mut mag, &self.neg, &self.pos);
                true
            }
        };
        let v = round_reg(&mag);
        if negative {
            -v
        } else {
            v
        }
    }
}

/// Add `val` into `reg` starting at limb `idx`, propagating carries.
fn add_into(reg: &mut [u64; EXACT_SUM_LIMBS], mut idx: usize, mut val: u64) {
    while val != 0 {
        let (sum, carry) = reg[idx].overflowing_add(val);
        reg[idx] = sum;
        val = carry as u64;
        idx += 1;
    }
}

/// `dst += src`, limb-wise with carry.
fn merge_reg(dst: &mut [u64; EXACT_SUM_LIMBS], src: &[u64; EXACT_SUM_LIMBS]) {
    let mut carry = 0u64;
    for i in 0..EXACT_SUM_LIMBS {
        let (s1, c1) = dst[i].overflowing_add(src[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        dst[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    debug_assert_eq!(carry, 0, "ExactSum register overflow");
}

/// Lexicographic magnitude comparison, most-significant limb first.
fn cmp_reg(a: &[u64; EXACT_SUM_LIMBS], b: &[u64; EXACT_SUM_LIMBS]) -> core::cmp::Ordering {
    for i in (0..EXACT_SUM_LIMBS).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    core::cmp::Ordering::Equal
}

/// `out = a − b`, assuming `a ≥ b`.
fn sub_reg(
    out: &mut [u64; EXACT_SUM_LIMBS],
    a: &[u64; EXACT_SUM_LIMBS],
    b: &[u64; EXACT_SUM_LIMBS],
) {
    let mut borrow = 0u64;
    for i in 0..EXACT_SUM_LIMBS {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0, "sub_reg called with a < b");
}

/// Bit `i` of the fixed-point magnitude.
fn reg_bit(mag: &[u64; EXACT_SUM_LIMBS], i: u32) -> u64 {
    (mag[(i / 64) as usize] >> (i % 64)) & 1
}

/// Round the fixed-point magnitude (LSB weight `2^-1074`) to the
/// nearest `f64`, ties to even.
fn round_reg(mag: &[u64; EXACT_SUM_LIMBS]) -> f64 {
    let top_limb = match (0..EXACT_SUM_LIMBS).rev().find(|&i| mag[i] != 0) {
        Some(i) => i,
        None => return 0.0,
    };
    let h = top_limb as u32 * 64 + (63 - mag[top_limb].leading_zeros());
    if h < 52 {
        // Fits entirely below the subnormal mantissa width: exact.
        // f64::from_bits(1) is 2^-1074, the fixed-point LSB weight.
        return mag[0] as f64 * f64::from_bits(1);
    }
    // 53-bit field mag[h-52 ..= h], then round-bit and sticky below it.
    let p = h - 52;
    let limb = (p / 64) as usize;
    let sh = p % 64;
    let mut mant = mag[limb] >> sh;
    if sh != 0 && limb + 1 < EXACT_SUM_LIMBS {
        mant |= mag[limb + 1] << (64 - sh);
    }
    mant &= (1u64 << 53) - 1;
    let mut h = h;
    if p > 0 {
        let round = reg_bit(mag, p - 1) == 1;
        let sticky = p > 1 && {
            let q = p - 1; // any bit strictly below index q?
            let ql = (q / 64) as usize;
            mag[..ql].iter().any(|&l| l != 0) || (mag[ql] & ((1u64 << (q % 64)) - 1)) != 0
        };
        if round && (sticky || mant & 1 == 1) {
            mant += 1;
            if mant == 1u64 << 53 {
                mant = 1u64 << 52;
                h += 1;
            }
        }
    }
    // value = mant · 2^k with mant ∈ [2^52, 2^53): a normal f64, so the
    // final scaling multiply is exact (k ≥ −1074 because h ≥ 52).
    let k = h as i64 - 52 - 1074;
    if k > 971 {
        return f64::INFINITY; // beyond f64::MAX
    }
    let pow = if k >= -1022 {
        f64::from_bits(((k + 1023) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (k + 1074))
    };
    mant as f64 * pow
}

/// Streaming moments with an *exact* merge: a Welford-style API
/// (push/merge/mean/variance) whose internal state is a pair of
/// [`ExactSum`] registers, so merging any partition of a sample equals
/// pushing the whole sample — bit-for-bit, not just to tolerance.
///
/// This is what the adaptive sampler and bench gate use wherever a
/// statistic must be reproducible across `--jobs` counts and process
/// boundaries. [`Accumulator`] remains the light-weight approximate
/// alternative for rendering-only paths.
#[derive(Clone, Debug, Default)]
pub struct Moments {
    n: u64,
    sum: ExactSum,
    sumsq: ExactSum,
    min: f64,
    max: f64,
}

impl Moments {
    /// The empty moment set.
    pub fn new() -> Self {
        Moments {
            n: 0,
            sum: ExactSum::new(),
            sumsq: ExactSum::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        // smi-lint: allow(panic-path): analysis-side statistics kernel;
        // measurement inputs are simulated seconds, always finite.
        assert!(x.is_finite(), "Moments::push: non-finite observation {x}");
        self.n += 1;
        self.sum.add(x);
        self.sumsq.add_product(x, x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another moment set into this one — exact, so any split of
    /// a sample merges back to the whole-sample state bit-for-bit.
    pub fn merge(&mut self, other: &Moments) {
        self.n += other.n;
        self.sum.merge(&other.sum);
        self.sumsq.merge(&other.sumsq);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; zero if empty. A constant sample returns the
    /// common value itself (not `round(n·x)/n`, which can differ by an
    /// ulp), so degenerate cells report exactly what they measured.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        if self.min == self.max {
            return self.min;
        }
        self.sum.value() / self.n as f64
    }

    /// Sample variance (n−1 denominator, clamped at zero); zero for
    /// fewer than two points. A constant sample is exactly zero — the
    /// `s²/n` correction term would otherwise reintroduce an ulp of
    /// rounding noise and give degenerate cells a phantom spread.
    pub fn variance(&self) -> f64 {
        if self.n < 2 || self.min == self.max {
            return 0.0;
        }
        let n = self.n as f64;
        let s = self.sum.value();
        let q = self.sumsq.value();
        ((q - s * s / n) / (n - 1.0)).max(0.0)
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; NaN if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; NaN if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

// ---------------------------------------------------------------------------
// Confidence intervals
// ---------------------------------------------------------------------------

/// A two-sided confidence interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ci {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Ci {
    /// The degenerate point interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Ci { lo: x, hi: x }
    }

    /// The all-of-ℝ interval — "no information yet" (fewer than two
    /// observations). Its relative half-width is infinite, so a
    /// stopping rule can never fire on it.
    pub fn unknown() -> Self {
        Ci { lo: f64::NEG_INFINITY, hi: f64::INFINITY }
    }

    /// Half the interval width.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Interval midpoint.
    pub fn midpoint(&self) -> f64 {
        self.lo / 2.0 + self.hi / 2.0
    }

    /// Half-width relative to the midpoint magnitude — the adaptive
    /// stopping criterion. Zero for a point interval; infinite when the
    /// midpoint is zero (or unknown) but the width is not.
    pub fn rel_half_width(&self) -> f64 {
        let hw = self.half_width();
        if hw == 0.0 {
            return 0.0;
        }
        let mid = self.midpoint();
        if mid == 0.0 || !mid.is_finite() {
            f64::INFINITY
        } else {
            hw / mid.abs()
        }
    }

    /// Does the interval contain `x`?
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Do two intervals overlap (share at least one point)?
    pub fn overlaps(&self, other: &Ci) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Student-t 95 % confidence interval on the mean of `xs`.
///
/// Total on every input: fewer than two observations yield
/// [`Ci::unknown`] (no variance estimate exists), constant samples
/// yield the point interval at the common value. Never panics.
pub fn t_ci_mean(xs: &[f64]) -> Ci {
    if xs.len() < 2 {
        return Ci::unknown();
    }
    let mut m = Moments::new();
    for &x in xs {
        m.push(x);
    }
    let n = xs.len() as f64;
    let hw = t_critical_95(xs.len() as u64 - 1) * m.stddev() / n.sqrt();
    let mean = m.mean();
    Ci { lo: mean - hw, hi: mean + hw }
}

/// Seeded-bootstrap 95 % confidence interval on the mean of `xs`
/// (percentile method, `resamples` resamples drawn from `rng`).
///
/// Deterministic: the same sample, resample count, and RNG state
/// produce the same interval bit-for-bit. Total on every input: empty
/// samples yield [`Ci::unknown`], a single observation yields its point
/// interval. The returned interval is widened, if necessary, to contain
/// the sample mean, so the point estimate is always inside its own
/// interval. Never panics.
pub fn bootstrap_ci_mean(xs: &[f64], resamples: u32, rng: &mut crate::rng::SimRng) -> Ci {
    if xs.is_empty() {
        return Ci::unknown();
    }
    let n = xs.len();
    if n == 1 {
        return Ci::point(xs[0]);
    }
    let mut means = Vec::with_capacity(resamples as usize);
    for _ in 0..resamples {
        let mut m = Moments::new();
        for _ in 0..n {
            m.push(xs[rng.below(n as u64) as usize]);
        }
        means.push(m.mean());
    }
    means.sort_unstable_by(f64::total_cmp);
    let lo = percentile_checked(&means, 0.025).unwrap_or(f64::NEG_INFINITY);
    let hi = percentile_checked(&means, 0.975).unwrap_or(f64::INFINITY);
    let mut whole = Moments::new();
    for &x in xs {
        whole.push(x);
    }
    let mean = whole.mean();
    Ci { lo: lo.min(mean), hi: hi.max(mean) }
}

/// Non-panicking [`percentile`]: `None` on an empty slice or `q`
/// outside `[0, 1]`, otherwise the same linear interpolation.
pub fn percentile_checked(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 32/7.
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..20] {
            left.push(x);
        }
        for &x in &xs[20..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
        let empty = Accumulator::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn ci95_of_six_runs() {
        // n=6 => df=5 => t=2.571.
        let mut acc = Accumulator::new();
        for x in [10.0, 10.2, 9.8, 10.1, 9.9, 10.0] {
            acc.push(x);
        }
        let hw = acc.ci95_half_width();
        let expected = 2.571 * acc.stddev() / 6f64.sqrt();
        assert!((hw - expected).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let (m, b, r2) = linear_fit(&xs, &ys);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percent_change_matches_paper_convention() {
        // Table 1, class A, 16 ranks: 48.51 -> 95.23 is +96.31 %.
        let pc = percent_change(48.51, 95.23);
        assert!((pc - 96.31).abs() < 0.01, "{pc}");
        assert_eq!(percent_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn t_table_endpoints() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(5) - 2.571).abs() < 1e-9);
        assert_eq!(t_critical_95(1000), 1.96);
        assert!(t_critical_95(0).is_nan());
    }

    #[test]
    fn cv_and_slice_helpers() {
        let xs = [1.0, 2.0, 3.0];
        assert!((mean(&xs) - 2.0).abs() < 1e-12);
        assert!((stddev(&xs) - 1.0).abs() < 1e-12);
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!((acc.cv() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_sum_round_trips_single_values() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            1e-300,
            -1e300,
            f64::MIN_POSITIVE,
            f64::from_bits(1), // min subnormal
            f64::MAX,
            123.456e-7,
        ] {
            let mut s = ExactSum::new();
            s.add(x);
            assert_eq!(s.value().to_bits(), if x == 0.0 { 0.0f64.to_bits() } else { x.to_bits() });
        }
    }

    #[test]
    fn exact_sum_recovers_catastrophic_cancellation() {
        // 1e16 + 1 − 1e16 is 0 in plain f64 summation; exact here.
        let mut s = ExactSum::new();
        s.add(1e16);
        s.add(1.0);
        s.add(-1e16);
        assert_eq!(s.value(), 1.0);
        // Kahan's classic: 1 + 1e100 + 1 − 1e100 = 2.
        let mut s = ExactSum::new();
        for x in [1.0, 1e100, 1.0, -1e100] {
            s.add(x);
        }
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn exact_sum_rounds_to_nearest_even() {
        // 2^53 + 1 is exactly representable? No: odd, above 2^53 — the
        // true sum must round to 2^53 (even mantissa), not 2^53 + 2.
        let mut s = ExactSum::new();
        s.add(9007199254740992.0); // 2^53
        s.add(1.0);
        assert_eq!(s.value(), 9007199254740992.0);
        // 2^53 + 2 is representable: stays exact.
        let mut s = ExactSum::new();
        s.add(9007199254740992.0);
        s.add(2.0);
        assert_eq!(s.value(), 9007199254740994.0);
        // 2^53 + 3 rounds up to 2^53 + 4 (ties-to-even on the half).
        let mut s = ExactSum::new();
        s.add(9007199254740992.0);
        s.add(2.0);
        s.add(1.0);
        assert_eq!(s.value(), 9007199254740996.0);
    }

    #[test]
    fn exact_sum_order_independent() {
        let xs = [0.1, -7.3, 1e15, 2.5e-13, -0.30000000000000004, 42.0];
        let mut fwd = ExactSum::new();
        for &x in &xs {
            fwd.add(x);
        }
        let mut rev = ExactSum::new();
        for &x in xs.iter().rev() {
            rev.add(x);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.value().to_bits(), rev.value().to_bits());
    }

    #[test]
    fn moments_match_accumulator_and_merge_exactly() {
        let xs: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).sin() * 3.0 + 10.0).collect();
        let mut whole = Moments::new();
        let mut acc = Accumulator::new();
        for &x in &xs {
            whole.push(x);
            acc.push(x);
        }
        assert!((whole.mean() - acc.mean()).abs() < 1e-12);
        assert!((whole.variance() - acc.variance()).abs() < 1e-10);
        // Every split point merges back bit-for-bit.
        for cut in 0..=xs.len() {
            let mut left = Moments::new();
            let mut right = Moments::new();
            for &x in &xs[..cut] {
                left.push(x);
            }
            for &x in &xs[cut..] {
                right.push(x);
            }
            left.merge(&right);
            assert_eq!(left.count(), whole.count());
            assert_eq!(left.mean().to_bits(), whole.mean().to_bits(), "cut {cut}");
            assert_eq!(left.variance().to_bits(), whole.variance().to_bits(), "cut {cut}");
            assert_eq!(left.min().to_bits(), whole.min().to_bits());
            assert_eq!(left.max().to_bits(), whole.max().to_bits());
        }
    }

    #[test]
    fn moments_empty_and_degenerate() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert!(m.min().is_nan());
        let mut c = Moments::new();
        for _ in 0..5 {
            c.push(4.25);
        }
        assert_eq!(c.mean(), 4.25);
        assert_eq!(c.variance(), 0.0);
    }

    #[test]
    fn ci_geometry() {
        let ci = Ci { lo: 9.0, hi: 11.0 };
        assert_eq!(ci.half_width(), 1.0);
        assert_eq!(ci.midpoint(), 10.0);
        assert!((ci.rel_half_width() - 0.1).abs() < 1e-12);
        assert!(ci.contains(10.0));
        assert!(!ci.contains(11.5));
        assert!(ci.overlaps(&Ci { lo: 10.5, hi: 20.0 }));
        assert!(!ci.overlaps(&Ci { lo: 11.5, hi: 20.0 }));
        assert_eq!(Ci::point(3.0).rel_half_width(), 0.0);
        assert_eq!(Ci::unknown().rel_half_width(), f64::INFINITY);
    }

    #[test]
    fn t_ci_is_total_and_matches_accumulator() {
        assert_eq!(t_ci_mean(&[]), Ci::unknown());
        assert_eq!(t_ci_mean(&[5.0]), Ci::unknown());
        let ci = t_ci_mean(&[7.0, 7.0, 7.0]);
        assert_eq!(ci, Ci::point(7.0));
        let xs = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0];
        let ci = t_ci_mean(&xs);
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!((ci.half_width() - acc.ci95_half_width()).abs() < 1e-12);
        assert!(ci.contains(acc.mean()));
    }

    #[test]
    fn bootstrap_ci_deterministic_and_contains_mean() {
        let xs = [10.0, 12.0, 9.0, 11.0, 10.5];
        let mut r1 = crate::rng::SimRng::new(42);
        let mut r2 = crate::rng::SimRng::new(42);
        let a = bootstrap_ci_mean(&xs, 200, &mut r1);
        let b = bootstrap_ci_mean(&xs, 200, &mut r2);
        assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        assert!(a.contains(mean(&xs)));
        // Total on tiny inputs.
        let mut r = crate::rng::SimRng::new(1);
        assert_eq!(bootstrap_ci_mean(&[], 100, &mut r), Ci::unknown());
        assert_eq!(bootstrap_ci_mean(&[3.0], 100, &mut r), Ci::point(3.0));
        let two = bootstrap_ci_mean(&[1.0, 2.0], 100, &mut r);
        assert!(two.contains(1.5));
        assert!(two.lo >= 1.0 && two.hi <= 2.0);
    }

    #[test]
    fn percentile_checked_is_total() {
        assert_eq!(percentile_checked(&[], 0.5), None);
        assert_eq!(percentile_checked(&[4.0], 0.5), Some(4.0));
        assert_eq!(percentile_checked(&[1.0, 2.0], 1.5), None);
        assert_eq!(percentile_checked(&[1.0, 2.0, 3.0, 4.0], 0.5), Some(2.5));
    }
}
