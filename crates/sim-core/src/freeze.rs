//! Freeze schedules: the laboratory's model of time spent in System
//! Management Mode.
//!
//! When a System Management Interrupt fires, **every** logical CPU of the
//! node enters SMM and host software makes no progress until the handler
//! returns ([Delgado & Karavanic 2013], §II.A of the reproduced paper).
//! From the point of view of anything running on the node, an SMI is a
//! *freeze window*: an interval of wall-clock time during which zero work
//! happens, invisible to the OS.
//!
//! A [`FreezeSchedule`] is the set of freeze windows for one node. The key
//! operations are the mapping from *work* to *wall* time
//! ([`FreezeSchedule::advance`]) and its inverse
//! ([`FreezeSchedule::work_between`]). Because the freeze is node-global,
//! an entire node-local simulation can run in work time and be mapped
//! through the schedule afterwards; the property tests in this module and
//! the cross-crate integration tests verify the algebra that makes this
//! sound:
//!
//! * `advance(t, 0) == t` (identity),
//! * `advance(advance(t, a), b) == advance(t, a + b)` (additivity),
//! * `advance(t, w) - t >= w` (wall time dominates work time),
//! * `work_between(t, advance(t, w)) == w` (inverse).

use crate::error::SimError;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;

/// How per-occurrence SMM residency is generated.
#[derive(Clone, Debug, PartialEq, jsonio::ToJson)]
pub enum DurationModel {
    /// Every occurrence freezes for exactly this long.
    Fixed(SimDuration),
    /// Each occurrence draws uniformly from `[lo, hi]` (inclusive).
    Uniform {
        /// Shortest possible residency.
        lo: SimDuration,
        /// Longest possible residency.
        hi: SimDuration,
    },
}

impl DurationModel {
    /// The paper's "short" SMI band: 1–3 ms in SMM.
    pub fn short_smi() -> Self {
        DurationModel::Uniform { lo: SimDuration::from_millis(1), hi: SimDuration::from_millis(3) }
    }

    /// The paper's "long" SMI band: 100–110 ms in SMM.
    pub fn long_smi() -> Self {
        DurationModel::Uniform {
            lo: SimDuration::from_millis(100),
            hi: SimDuration::from_millis(110),
        }
    }

    /// The largest duration the model can produce.
    pub fn max(&self) -> SimDuration {
        match *self {
            DurationModel::Fixed(d) => d,
            DurationModel::Uniform { hi, .. } => hi,
        }
    }

    /// The expected duration of one occurrence.
    pub fn mean(&self) -> SimDuration {
        match *self {
            DurationModel::Fixed(d) => d,
            DurationModel::Uniform { lo, hi } => SimDuration((lo.0 + hi.0) / 2),
        }
    }

    fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            DurationModel::Fixed(d) => d,
            // An inverted band samples from the normalized [min, max];
            // `validate` reports inverted bands as typed errors upstream.
            DurationModel::Uniform { lo, hi } => {
                SimDuration(rng.range_u64(lo.0.min(hi.0), lo.0.max(hi.0)))
            }
        }
    }

    /// Check the model describes a drawable band.
    pub fn validate(&self) -> Result<(), SimError> {
        match *self {
            DurationModel::Fixed(_) => Ok(()),
            DurationModel::Uniform { lo, hi } if lo > hi => Err(SimError::invalid(
                "duration model",
                format!("uniform band is inverted: lo {lo} > hi {hi}"),
            )),
            DurationModel::Uniform { .. } => Ok(()),
        }
    }
}

/// What the trigger source does when the trigger instant falls while the
/// node is still inside a previous SMM window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, jsonio::ToJson)]
pub enum TriggerPolicy {
    /// The trigger is lost; the next SMI fires at the next periodic
    /// instant that falls outside SMM. This models a host-side timer that
    /// simply does not run while the node is frozen (the behaviour of the
    /// modified Blackbox SMI driver re-arming its timer).
    SkipWhileFrozen,
    /// The trigger is latched and fires as soon as the node leaves SMM,
    /// after a small sliver of host progress (`min_gap`). This models a
    /// pending timer interrupt delivering immediately at SMM exit. Without
    /// the sliver, a duration longer than the period would freeze the node
    /// forever; real hosts always regain the CPU long enough for the timer
    /// softirq to run.
    DeferToExit {
        /// Minimum host-visible gap between consecutive windows.
        min_gap: SimDuration,
    },
    /// The driver sleeps for the full period *after* the handler returns
    /// (a `msleep(x)` loop): consecutive windows are separated by exactly
    /// one period of host time, so the duty cycle `d/(d+p)` varies
    /// smoothly with the period even when residency exceeds it. This is
    /// the behaviour the multithreaded study's smooth interval sweeps
    /// imply for the modified Blackbox driver.
    RearmAfterExit,
}

/// Configuration for a periodic SMI source on one node.
#[derive(Clone, Debug, jsonio::ToJson)]
pub struct PeriodicFreeze {
    /// Wall time of the first trigger.
    pub first_trigger: SimTime,
    /// Trigger interval ("one SMI every x jiffies").
    pub period: SimDuration,
    /// SMM residency per occurrence.
    pub durations: DurationModel,
    /// Behaviour when a trigger lands inside an existing window.
    pub policy: TriggerPolicy,
    /// Seed for the per-occurrence duration stream.
    pub seed: u64,
}

impl PeriodicFreeze {
    /// A conventional configuration: triggers every `period` starting at a
    /// random phase within the first period (drawn from `rng`), skipping
    /// triggers that land inside SMM.
    pub fn with_random_phase(
        period: SimDuration,
        durations: DurationModel,
        rng: &mut SimRng,
    ) -> Self {
        PeriodicFreeze::drawn(period, durations, TriggerPolicy::SkipWhileFrozen, rng)
    }

    /// The single constructor surface for drawing a periodic configuration
    /// from an RNG stream: one phase draw within the first period, then one
    /// duration-stream seed draw. Every schedule generator (the SMI driver,
    /// every noise model) goes through here so the draw order — and with it
    /// every golden digest — has exactly one definition.
    pub fn drawn(
        period: SimDuration,
        durations: DurationModel,
        policy: TriggerPolicy,
        rng: &mut SimRng,
    ) -> Self {
        // A zero period is not a meaningful trigger source; normalize to
        // the 1 ns minimum rather than fault (`validate` reports it).
        let period = SimDuration(period.0.max(1));
        let phase = SimDuration(rng.below(period.0));
        PeriodicFreeze {
            first_trigger: SimTime::ZERO + phase,
            period,
            durations,
            policy,
            seed: rng.next(),
        }
    }

    /// Check the configuration describes a generable schedule: a nonzero
    /// period, a nonzero `DeferToExit` gap (a zero gap would freeze the
    /// node forever once residency exceeds the period), and a drawable
    /// duration band.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.period.is_zero() {
            return Err(SimError::invalid("freeze schedule", "zero trigger period"));
        }
        if let TriggerPolicy::DeferToExit { min_gap } = self.policy {
            if min_gap.is_zero() {
                return Err(SimError::invalid(
                    "freeze schedule",
                    "DeferToExit requires a nonzero min_gap",
                ));
            }
        }
        self.durations.validate()
    }
}

/// Lazily generated, cached window list.
#[derive(Clone, Debug)]
struct GenState {
    /// Windows generated so far, in increasing, non-overlapping order.
    windows: Vec<(SimTime, SimTime)>,
    /// Prefix sums of window lengths: `cum_frozen[i]` is the total frozen
    /// nanoseconds in `windows[..i]`; always `windows.len() + 1` entries.
    /// Lets interval queries answer in O(log n) instead of a scan.
    cum_frozen: Vec<u64>,
    /// Index of the next candidate trigger (`first_trigger + k * period`).
    next_k: u64,
    /// RNG for occurrence durations, advanced once per *accepted* window.
    rng: SimRng,
    /// Every window starting at or before this instant has been generated.
    covered: SimTime,
    /// Hint for [`locate`]: the engine queries each schedule at
    /// near-monotone instants (once per message part), so the answer is
    /// almost always within a step or two of the previous one.
    cursor: usize,
}

impl GenState {
    /// Record an accepted window, keeping the prefix sums in lockstep.
    fn push_window(&mut self, start: SimTime, end: SimTime) {
        let last = self.cum_frozen.last().copied().unwrap_or(0);
        self.cum_frozen.push(last + end.0.saturating_sub(start.0));
        self.windows.push((start, end));
    }

    /// Indices `[i, j)` of the windows overlapping the half-open interval
    /// `[a, b)`; callers guarantee `b > a` and coverage through `b`.
    /// Windows are sorted and non-overlapping, so their ends are sorted
    /// too and the overlapping set is one contiguous index range.
    fn overlap_range(&mut self, a: SimTime, b: SimTime) -> (usize, usize) {
        // `partition_point(s < b)` == `partition_point(s <= b-1)`;
        // `b > a >= 0` guarantees `b.0 >= 1`.
        let j = locate(&self.windows, self.cursor, SimTime(b.0 - 1));
        self.cursor = j;
        let i = self.windows[..j].partition_point(|&(_, e)| e <= a);
        (i, j)
    }
}

/// `windows.partition_point(|&(s, _)| s <= t)`, accelerated by a hint.
///
/// Starts at `hint` (the previous answer) and walks up to a few steps in
/// the right direction before falling back to binary search on the
/// remaining range, so near-monotone query streams cost O(1) amortized.
/// The return value is exactly the plain `partition_point` result.
fn locate(windows: &[(SimTime, SimTime)], hint: usize, t: SimTime) -> usize {
    const WALK: usize = 4;
    let n = windows.len();
    let h = hint.min(n);
    if h == 0 || windows[h - 1].0 <= t {
        // Answer is at or after the hint.
        let mut i = h;
        for _ in 0..WALK {
            if i < n && windows[i].0 <= t {
                i += 1;
            } else {
                return i;
            }
        }
        i + windows[i..].partition_point(|&(s, _)| s <= t)
    } else {
        // `windows[h - 1].0 > t`: answer is before the hint.
        let mut i = h - 1;
        for _ in 0..WALK {
            if i > 0 && windows[i - 1].0 > t {
                i -= 1;
            } else {
                return i;
            }
        }
        if i > 0 && windows[i - 1].0 > t {
            windows[..i].partition_point(|&(s, _)| s <= t)
        } else {
            i
        }
    }
}

/// The freeze windows of one node (or, for per-core noise models, one
/// logical CPU).
///
/// Windows come from one of two sources: a periodic trigger configuration
/// whose window cache is generated lazily (`config` + `gen`), or an
/// explicit pre-validated window list ([`FreezeSchedule::from_windows`],
/// `gen` only, fully covered up front). A schedule may additionally carry
/// a *slowdown factor*: instead of freezing, its windows let work proceed
/// at a reduced throughput (the SMT-contention model), with all time
/// arithmetic staying in exact integer nanoseconds.
///
/// Cheap to clone configuration-wise; a periodic clone re-derives
/// identical windows from the same seed.
#[derive(Debug)]
pub struct FreezeSchedule {
    /// Periodic trigger source, if the windows are generated.
    config: Option<PeriodicFreeze>,
    /// Window cache; `None` only for the silent schedule.
    gen: Option<RefCell<GenState>>,
    /// Throughput retained *inside* windows, in 1/1000ths. `0` means a
    /// full freeze (every SMI model); `1..=999` means windows degrade
    /// instead of stopping progress (the SMT-contention model).
    slowdown_milli: u32,
}

impl Clone for FreezeSchedule {
    fn clone(&self) -> Self {
        let mut s = match (&self.config, &self.gen) {
            // Periodic: re-derive the cache from the seed.
            (Some(_), _) => FreezeSchedule::from_config(self.config.clone()),
            // Explicit list: the windows are the state; copy them.
            (None, Some(gen)) => FreezeSchedule {
                config: None,
                gen: Some(RefCell::new(gen.borrow().clone())),
                slowdown_milli: 0,
            },
            (None, None) => FreezeSchedule::none(),
        };
        s.slowdown_milli = self.slowdown_milli;
        s
    }
}

impl FreezeSchedule {
    /// A schedule with no SMI activity (the paper's "SMM 0" case).
    pub fn none() -> Self {
        FreezeSchedule { config: None, gen: None, slowdown_milli: 0 }
    }

    /// A schedule over an explicit window list, which must be sorted,
    /// non-overlapping, and free of zero-length windows — the typed
    /// rejection noise models surface for malformed specs.
    pub fn from_windows(windows: Vec<(SimTime, SimTime)>) -> Result<Self, SimError> {
        let mut cum_frozen = Vec::with_capacity(windows.len() + 1);
        cum_frozen.push(0u64);
        let mut prev_end = SimTime::ZERO;
        for (i, &(s, e)) in windows.iter().enumerate() {
            if e <= s {
                return Err(SimError::invalid(
                    "freeze schedule",
                    format!("window {i} has zero or negative length: [{s:?}, {e:?})"),
                ));
            }
            if s < prev_end {
                return Err(SimError::invalid(
                    "freeze schedule",
                    format!("window {i} starting at {s:?} overlaps its predecessor"),
                ));
            }
            prev_end = e;
            let last = cum_frozen.last().copied().unwrap_or(0);
            cum_frozen.push(last + (e.0 - s.0));
        }
        let gen = GenState {
            windows,
            cum_frozen,
            next_k: 0,
            rng: SimRng::new(0),
            covered: SimTime::MAX,
            cursor: 0,
        };
        Ok(FreezeSchedule { config: None, gen: Some(RefCell::new(gen)), slowdown_milli: 0 })
    }

    /// Turn this schedule's windows into slowdown windows: work inside
    /// them proceeds at `throughput_milli`/1000 of full speed instead of
    /// stopping. The factor must be strictly between 0 (that is a freeze)
    /// and 1000 (that is no noise at all).
    pub fn with_slowdown(mut self, throughput_milli: u32) -> Result<Self, SimError> {
        if throughput_milli == 0 || throughput_milli >= 1000 {
            return Err(SimError::invalid(
                "freeze schedule",
                format!(
                    "slowdown throughput must be within 1..=999 milli-units, \
                     got {throughput_milli}"
                ),
            ));
        }
        self.slowdown_milli = throughput_milli;
        Ok(self)
    }

    /// Throughput retained inside windows, in 1/1000ths (0 = full freeze).
    pub fn slowdown_milli(&self) -> u32 {
        self.slowdown_milli
    }

    /// A periodic schedule (the paper's "SMM 1" / "SMM 2" cases).
    ///
    /// Degenerate inputs are normalized to the nearest generable
    /// configuration (a zero period or `DeferToExit` gap becomes the 1 ns
    /// minimum) so a schedule can always be driven; callers that want the
    /// typed rejection instead run [`PeriodicFreeze::validate`] first —
    /// the engine's validate mode does.
    pub fn periodic(mut config: PeriodicFreeze) -> Self {
        config.period = SimDuration(config.period.0.max(1));
        if let TriggerPolicy::DeferToExit { min_gap } = &mut config.policy {
            *min_gap = SimDuration(min_gap.0.max(1));
        }
        FreezeSchedule::from_config(Some(config))
    }

    fn from_config(config: Option<PeriodicFreeze>) -> Self {
        let gen = config.as_ref().map(|config| {
            RefCell::new(GenState {
                windows: Vec::new(),
                cum_frozen: vec![0],
                next_k: 0,
                rng: SimRng::new(config.seed),
                covered: SimTime::ZERO,
                cursor: 0,
            })
        });
        FreezeSchedule { config, gen, slowdown_milli: 0 }
    }

    /// Whether this schedule ever perturbs the node.
    pub fn is_noisy(&self) -> bool {
        self.gen.is_some()
    }

    /// The configuration, if periodic.
    pub fn config(&self) -> Option<&PeriodicFreeze> {
        self.config.as_ref()
    }

    /// Generate windows until the window cache provably covers all windows
    /// that *begin* at or before `t`.
    fn ensure_covered(&self, t: SimTime) {
        let Some(gen_cell) = &self.gen else { return };
        let mut gen = gen_cell.borrow_mut();
        let gen = &mut *gen;
        if t <= gen.covered {
            return;
        }
        // Explicit window lists are fully covered at construction, so
        // reaching here means a periodic configuration exists.
        let Some(cfg) = &self.config else { return };
        loop {
            let last_end = gen.windows.last().map(|&(_, e)| e).unwrap_or(SimTime::ZERO);
            // Next candidate trigger instant.
            let candidate = if cfg.policy == TriggerPolicy::RearmAfterExit {
                if gen.windows.is_empty() {
                    cfg.first_trigger
                } else {
                    match last_end.checked_add(cfg.period) {
                        Some(c) => c,
                        None => {
                            gen.covered = SimTime::MAX;
                            return;
                        }
                    }
                }
            } else {
                let Some(offset) = cfg.period.0.checked_mul(gen.next_k) else {
                    gen.covered = SimTime::MAX;
                    return;
                };
                match cfg.first_trigger.checked_add(SimDuration(offset)) {
                    Some(c) => c,
                    None => {
                        gen.covered = SimTime::MAX;
                        return;
                    }
                }
            };
            let start = if candidate >= last_end {
                gen.next_k += 1;
                candidate
            } else {
                match cfg.policy {
                    TriggerPolicy::SkipWhileFrozen => {
                        // Trigger lost; advance to the next candidate.
                        gen.next_k += 1;
                        if candidate > t {
                            // This candidate was past the horizon anyway.
                            gen.covered = gen.covered.max(t);
                            return;
                        }
                        continue;
                    }
                    TriggerPolicy::DeferToExit { min_gap } => {
                        // Latched trigger fires after a sliver of host time.
                        gen.next_k += 1;
                        last_end + min_gap
                    }
                    // Rearm candidates are derived from `last_end + period`
                    // and so never precede `last_end`; if the arithmetic
                    // were ever wrong, starting at the window edge keeps
                    // generation monotone instead of faulting.
                    TriggerPolicy::RearmAfterExit => last_end,
                }
            };
            if start > t && candidate > t {
                // We have generated a window beyond the horizon; everything
                // starting at or before `t` is now cached (the window just
                // generated is kept — it is valid — and coverage extends to
                // just before its start).
                let d = cfg.durations.sample(&mut gen.rng);
                gen.push_window(start, start + d);
                gen.covered = gen.covered.max(t).max(SimTime(start.0 - 1));
                return;
            }
            let d = cfg.durations.sample(&mut gen.rng);
            gen.push_window(start, start + d);
        }
    }

    /// The freeze windows overlapping the half-open interval `[a, b)`.
    pub fn windows_between(&self, a: SimTime, b: SimTime) -> Vec<(SimTime, SimTime)> {
        let Some(gen_cell) = &self.gen else { return Vec::new() };
        if b <= a {
            return Vec::new();
        }
        self.ensure_covered(b);
        let mut gen = gen_cell.borrow_mut();
        let gen = &mut *gen;
        let (i, j) = gen.overlap_range(a, b);
        gen.windows[i..j].to_vec()
    }

    /// Whether the node is frozen at instant `t` (windows are half-open:
    /// frozen on `[start, end)`). Slowdown windows degrade rather than
    /// stop progress, so they never report frozen.
    pub fn is_frozen(&self, t: SimTime) -> bool {
        self.slowdown_milli == 0 && self.window_containing(t).is_some()
    }

    /// The window containing `t`, if any.
    pub fn window_containing(&self, t: SimTime) -> Option<(SimTime, SimTime)> {
        let gen_cell = self.gen.as_ref()?;
        self.ensure_covered(t);
        let mut gen = gen_cell.borrow_mut();
        let gen = &mut *gen;
        // Windows are sorted; find the last window starting at or before t
        // (cursor-accelerated: engine queries are near-monotone).
        let idx = locate(&gen.windows, gen.cursor, t);
        gen.cursor = idx;
        if idx == 0 {
            return None;
        }
        let (s, e) = gen.windows[idx - 1];
        (t >= s && t < e).then_some((s, e))
    }

    /// The earliest instant `>= t` at which the node is not frozen.
    /// Slowdown windows make progress, so they are transparent here.
    pub fn unfreeze(&self, t: SimTime) -> SimTime {
        if self.slowdown_milli != 0 {
            return t;
        }
        match self.window_containing(t) {
            Some((_, end)) => end,
            None => t,
        }
    }

    /// The start of the first window beginning strictly after `t`, if it
    /// can be generated without overflowing simulated time.
    pub fn next_window_after(&self, t: SimTime) -> Option<(SimTime, SimTime)> {
        let gen_cell = self.gen.as_ref()?;
        let Some(cfg) = &self.config else {
            // Explicit lists are fully generated; look up directly.
            let mut gen = gen_cell.borrow_mut();
            let gen = &mut *gen;
            let idx = locate(&gen.windows, gen.cursor, t);
            gen.cursor = idx;
            return gen.windows.get(idx).copied();
        };
        // Generate a little past t until we find a window starting after t.
        let mut horizon = t;
        let step = SimDuration(cfg.period.0.saturating_add(cfg.durations.max().0).max(1));
        for _ in 0..64 {
            horizon = horizon.saturating_add(step);
            self.ensure_covered(horizon);
            let mut gen = gen_cell.borrow_mut();
            let gen = &mut *gen;
            let idx = locate(&gen.windows, gen.cursor, t);
            gen.cursor = idx;
            if idx < gen.windows.len() {
                return Some(gen.windows[idx]);
            }
            if horizon == SimTime::MAX {
                return None;
            }
        }
        None
    }

    /// Map `work` units of useful execution starting at wall instant
    /// `start` to the wall instant at which the work completes.
    ///
    /// Work only progresses outside freeze windows. `advance(t, 0) == t`
    /// exactly (even if `t` is frozen), which makes the mapping additive.
    pub fn advance(&self, start: SimTime, work: SimDuration) -> SimTime {
        if work.is_zero() {
            return start;
        }
        if self.gen.is_none() {
            return start + work;
        }
        if self.slowdown_milli != 0 {
            return self.advance_slowed(start, work);
        }
        let mut t = start;
        let mut remaining = work;
        loop {
            t = self.unfreeze(t);
            // `next_window_after(t)` only returns windows starting
            // strictly after `t`, so the gap is never negative.
            let gap_end = match self.next_window_after(t) {
                Some((s, _)) => s,
                None => SimTime::MAX,
            };
            let avail = gap_end.since(t);
            if avail >= remaining {
                return t + remaining;
            }
            remaining -= avail;
            t = gap_end;
        }
    }

    /// [`advance`](Self::advance) when windows slow work down instead of
    /// freezing it. Work inside a window anchored at `ws` progresses as
    /// `done(x) = floor((x - ws) * s / 1000)` with `s = slowdown_milli`;
    /// the anchoring keeps the map a function of wall time alone, so
    /// additivity and the [`work_between`](Self::work_between) inverse
    /// hold exactly in integer nanoseconds.
    fn advance_slowed(&self, start: SimTime, work: SimDuration) -> SimTime {
        let s = self.slowdown_milli as u128;
        let done = |x: u64| ((x as u128 * s) / 1000) as u64;
        let mut t = start;
        let mut remaining = work.0;
        loop {
            if let Some((ws, we)) = self.window_containing(t) {
                let done_t = done(t.0 - ws.0);
                let avail = done(we.0 - ws.0) - done_t;
                if avail >= remaining {
                    let target = done_t + remaining;
                    // Minimal x with done(x) == target: ceil(target*1000/s).
                    // s <= 1000 guarantees done() lands exactly on target.
                    let dx = ((target as u128 * 1000).div_ceil(s)) as u64;
                    return SimTime(ws.0 + dx);
                }
                remaining -= avail;
                t = we;
            } else {
                let gap_end = match self.next_window_after(t) {
                    Some((ws, _)) => ws,
                    None => SimTime::MAX,
                };
                let avail = gap_end.since(t).0;
                if avail >= remaining {
                    return t + SimDuration(remaining);
                }
                remaining -= avail;
                t = gap_end;
            }
        }
    }

    /// Total stolen time within the half-open wall interval `[a, b)`:
    /// frozen time for freeze windows, the unrealized fraction of window
    /// time for slowdown windows. Always `(b - a) - work_between(a, b)`.
    pub fn frozen_between(&self, a: SimTime, b: SimTime) -> SimDuration {
        self.span_stats(a, b).1
    }

    /// Freeze-window starts and frozen time over `[a, b)` in one lookup:
    /// `(count_between(a, b), frozen_between(a, b))`. The executor's
    /// fixed-point loop needs both at every iteration, and answering
    /// them together from the prefix sums costs one O(log n) range
    /// lookup instead of two window scans.
    pub fn span_stats(&self, a: SimTime, b: SimTime) -> (usize, SimDuration) {
        if b <= a {
            return (0, SimDuration::ZERO);
        }
        let Some(gen_cell) = &self.gen else { return (0, SimDuration::ZERO) };
        self.ensure_covered(b);
        let mut gen = gen_cell.borrow_mut();
        let gen = &mut *gen;
        let (i, j) = gen.overlap_range(a, b);
        if i >= j {
            return (0, SimDuration::ZERO);
        }
        let (s_first, _) = gen.windows[i];
        // Start count: every overlapping window except a leading one that
        // began before `a` starts within `[a, b)`.
        let first_inside = if s_first < a { i + 1 } else { i };
        let count = j - first_inside;
        if self.slowdown_milli != 0 {
            // Slowdown windows steal only the complement of the retained
            // throughput; compute per clipped window with the same
            // anchored-floor arithmetic `advance_slowed` uses so
            // `work_between` stays its exact inverse.
            let s = self.slowdown_milli as u128;
            let done = |x: u64| ((x as u128 * s) / 1000) as u64;
            let mut stolen = 0u64;
            for &(ws, we) in &gen.windows[i..j] {
                let lo = ws.max(a);
                let hi = we.min(b);
                let progressed = done(hi.0 - ws.0) - done(lo.0 - ws.0);
                stolen += (hi.0 - lo.0) - progressed;
            }
            return (count, SimDuration(stolen));
        }
        // Frozen time: the prefix-sum total of windows [i, j), clipped at
        // the interval edges. Windows are non-overlapping, so only the
        // first can start before `a` and only the last can end after `b`.
        let mut frozen = gen
            .cum_frozen
            .get(j)
            .copied()
            .unwrap_or(0)
            .saturating_sub(gen.cum_frozen.get(i).copied().unwrap_or(0));
        if s_first < a {
            frozen = frozen.saturating_sub(a.0 - s_first.0);
        }
        let (_, e_last) = gen.windows[j - 1];
        if e_last > b {
            frozen = frozen.saturating_sub(e_last.0 - b.0);
        }
        (count, SimDuration(frozen))
    }

    /// Useful work accomplished within the wall interval `[a, b)`: the
    /// interval length minus frozen time. Inverse of [`advance`].
    ///
    /// [`advance`]: FreezeSchedule::advance
    pub fn work_between(&self, a: SimTime, b: SimTime) -> SimDuration {
        if b <= a {
            return SimDuration::ZERO;
        }
        b.since(a) - self.frozen_between(a, b)
    }

    /// Number of freeze windows that *begin* within `[a, b)`.
    pub fn count_between(&self, a: SimTime, b: SimTime) -> usize {
        self.span_stats(a, b).0
    }

    /// The long-run fraction of wall time spent frozen (duty cycle), as
    /// implied by the configuration. For `SkipWhileFrozen` with durations
    /// that can exceed the period this accounts for lost triggers.
    pub fn duty_cycle(&self) -> f64 {
        let Some(cfg) = self.config() else { return 0.0 };
        // Slowdown windows steal only the complement of the retained
        // throughput.
        let steal = (1000 - self.slowdown_milli.min(1000)) as f64 / 1000.0;
        let d = cfg.durations.mean().0 as f64;
        let p = cfg.period.0 as f64;
        steal
            * match cfg.policy {
                TriggerPolicy::SkipWhileFrozen => {
                    // Windows occupy d out of every ceil(d/p)*p of wall time
                    // (to first order, treating d as its mean).
                    let slots = (d / p).ceil().max(1.0);
                    (d / (slots * p)).min(1.0)
                }
                TriggerPolicy::DeferToExit { min_gap } => {
                    let g = min_gap.0 as f64;
                    if d >= p {
                        d / (d + g)
                    } else {
                        (d / p).min(1.0)
                    }
                }
                TriggerPolicy::RearmAfterExit => d / (d + p),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(period_ms: u64, dur_ms: u64, phase_ms: u64) -> FreezeSchedule {
        FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::from_millis(phase_ms),
            period: SimDuration::from_millis(period_ms),
            durations: DurationModel::Fixed(SimDuration::from_millis(dur_ms)),
            policy: TriggerPolicy::SkipWhileFrozen,
            seed: 1,
        })
    }

    #[test]
    fn none_schedule_is_transparent() {
        let s = FreezeSchedule::none();
        let t = SimTime::from_millis(5);
        assert!(!s.is_frozen(t));
        assert_eq!(s.unfreeze(t), t);
        assert_eq!(s.advance(t, SimDuration::from_millis(7)), SimTime::from_millis(12));
        assert_eq!(s.frozen_between(SimTime::ZERO, SimTime::from_secs(10)), SimDuration::ZERO);
        assert!(!s.is_noisy());
    }

    #[test]
    fn window_membership_is_half_open() {
        let s = fixed(1000, 100, 500);
        assert!(!s.is_frozen(SimTime::from_millis(499)));
        assert!(s.is_frozen(SimTime::from_millis(500)));
        assert!(s.is_frozen(SimTime::from_millis(599)));
        assert!(!s.is_frozen(SimTime::from_millis(600)));
    }

    #[test]
    fn advance_passes_through_one_window() {
        // Window [500, 600) ms. 450ms of work from t=100 runs 400ms to the
        // window, waits 100ms, then 50ms more: finishes at 650ms.
        let s = fixed(1000, 100, 500);
        let end = s.advance(SimTime::from_millis(100), SimDuration::from_millis(450));
        assert_eq!(end, SimTime::from_millis(650));
    }

    #[test]
    fn advance_landing_exactly_on_window_start() {
        let s = fixed(1000, 100, 500);
        let end = s.advance(SimTime::from_millis(100), SimDuration::from_millis(400));
        assert_eq!(end, SimTime::from_millis(500));
        // Continuing from the boundary skips the window first.
        let end2 = s.advance(end, SimDuration::from_millis(1));
        assert_eq!(end2, SimTime::from_millis(601));
    }

    #[test]
    fn advance_zero_is_identity_even_when_frozen() {
        let s = fixed(1000, 100, 500);
        let frozen_instant = SimTime::from_millis(550);
        assert!(s.is_frozen(frozen_instant));
        assert_eq!(s.advance(frozen_instant, SimDuration::ZERO), frozen_instant);
    }

    #[test]
    fn advance_starting_inside_window_waits_for_exit() {
        let s = fixed(1000, 100, 500);
        let end = s.advance(SimTime::from_millis(550), SimDuration::from_millis(10));
        assert_eq!(end, SimTime::from_millis(610));
    }

    #[test]
    fn frozen_between_partial_overlap() {
        let s = fixed(1000, 100, 500);
        // [550, 1600): second window [1500,1600) fully inside, first half-in.
        let frozen = s.frozen_between(SimTime::from_millis(550), SimTime::from_millis(1600));
        assert_eq!(frozen, SimDuration::from_millis(150));
    }

    #[test]
    fn work_between_inverts_advance() {
        let s = fixed(700, 120, 333);
        let start = SimTime::from_millis(10);
        for work_ms in [0u64, 1, 100, 333, 700, 3000, 12345] {
            let work = SimDuration::from_millis(work_ms);
            let end = s.advance(start, work);
            assert_eq!(s.work_between(start, end), work, "work={work_ms}ms");
        }
    }

    #[test]
    fn additivity_on_fixed_schedule() {
        let s = fixed(400, 90, 123);
        let t = SimTime::from_millis(7);
        for (a_ms, b_ms) in [(0u64, 5u64), (5, 0), (100, 300), (395, 5), (1000, 1)] {
            let a = SimDuration::from_millis(a_ms);
            let b = SimDuration::from_millis(b_ms);
            assert_eq!(s.advance(s.advance(t, a), b), s.advance(t, a + b), "a={a_ms} b={b_ms}");
        }
    }

    #[test]
    fn skip_policy_drops_triggers_landing_in_smm() {
        // period 50ms, duration 105ms: triggers at 0, 50, 100 are inside
        // the first window [0,105); next accepted trigger is 150.
        let s = fixed(50, 105, 0);
        let wins = s.windows_between(SimTime::ZERO, SimTime::from_millis(400));
        assert_eq!(wins[0], (SimTime::ZERO, SimTime::from_millis(105)));
        assert_eq!(wins[1].0, SimTime::from_millis(150));
        assert_eq!(wins[2].0, SimTime::from_millis(300));
        // Duty cycle: 105 of every 150 ms.
        assert!((s.duty_cycle() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn defer_policy_fires_at_exit_with_min_gap() {
        let s = FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::ZERO,
            period: SimDuration::from_millis(50),
            durations: DurationModel::Fixed(SimDuration::from_millis(105)),
            policy: TriggerPolicy::DeferToExit { min_gap: SimDuration::from_millis(1) },
            seed: 1,
        });
        let wins = s.windows_between(SimTime::ZERO, SimTime::from_millis(500));
        assert_eq!(wins[0], (SimTime::ZERO, SimTime::from_millis(105)));
        // Pending trigger from t=50 fires at 105+1.
        assert_eq!(wins[1].0, SimTime::from_millis(106));
        // Progress is made, slowly: advancing 10ms of work takes many windows.
        let end = s.advance(SimTime::ZERO, SimDuration::from_millis(10));
        assert!(end > SimTime::from_millis(1000), "end={end:?}");
        assert!(end < SimTime::MAX);
    }

    #[test]
    fn rearm_policy_spaces_windows_by_period_of_host_time() {
        let s = FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::from_millis(20),
            period: SimDuration::from_millis(50),
            durations: DurationModel::Fixed(SimDuration::from_millis(105)),
            policy: TriggerPolicy::RearmAfterExit,
            seed: 1,
        });
        let wins = s.windows_between(SimTime::ZERO, SimTime::from_millis(600));
        assert_eq!(wins[0], (SimTime::from_millis(20), SimTime::from_millis(125)));
        assert_eq!(wins[1].0, SimTime::from_millis(175));
        assert_eq!(wins[2].0, SimTime::from_millis(330));
        // Duty cycle is d/(d+p) = 105/155.
        assert!((s.duty_cycle() - 105.0 / 155.0).abs() < 1e-9);
    }

    #[test]
    fn rearm_duty_is_monotone_in_period() {
        let duty = |p: u64| {
            FreezeSchedule::periodic(PeriodicFreeze {
                first_trigger: SimTime::ZERO,
                period: SimDuration::from_millis(p),
                durations: DurationModel::Fixed(SimDuration::from_millis(105)),
                policy: TriggerPolicy::RearmAfterExit,
                seed: 2,
            })
            .frozen_between(SimTime::ZERO, SimTime::from_secs(60))
            .as_secs_f64()
        };
        let mut last = f64::INFINITY;
        for p in [50u64, 100, 150, 300, 600, 1200] {
            let f = duty(p);
            assert!(f < last, "frozen time must fall as the interval grows: p={p} f={f}");
            last = f;
        }
    }

    #[test]
    fn uniform_durations_stay_in_band() {
        let s = FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::from_millis(10),
            period: SimDuration::from_secs(1),
            durations: DurationModel::long_smi(),
            policy: TriggerPolicy::SkipWhileFrozen,
            seed: 42,
        });
        let wins = s.windows_between(SimTime::ZERO, SimTime::from_secs(60));
        assert_eq!(wins.len(), 60);
        for (st, en) in wins {
            let d = en.since(st);
            assert!(
                d >= SimDuration::from_millis(100) && d <= SimDuration::from_millis(110),
                "duration {d:?} outside the long band"
            );
        }
    }

    #[test]
    fn clone_reproduces_identical_windows() {
        let mut rng = SimRng::new(7);
        let cfg = PeriodicFreeze::with_random_phase(
            SimDuration::from_millis(250),
            DurationModel::short_smi(),
            &mut rng,
        );
        let a = FreezeSchedule::periodic(cfg.clone());
        let b = a.clone();
        // Consume from `a` in a different order to stress the lazy cache.
        let _ = a.advance(SimTime::from_secs(3), SimDuration::from_secs(1));
        assert_eq!(
            a.windows_between(SimTime::ZERO, SimTime::from_secs(5)),
            b.windows_between(SimTime::ZERO, SimTime::from_secs(5))
        );
    }

    #[test]
    fn count_between_counts_window_starts() {
        let s = fixed(1000, 100, 500);
        assert_eq!(s.count_between(SimTime::ZERO, SimTime::from_secs(4)), 4);
        assert_eq!(s.count_between(SimTime::from_millis(501), SimTime::from_secs(2)), 1);
    }

    #[test]
    fn duty_cycle_long_at_one_hz() {
        let s = FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::ZERO,
            period: SimDuration::from_secs(1),
            durations: DurationModel::long_smi(),
            policy: TriggerPolicy::SkipWhileFrozen,
            seed: 0,
        });
        assert!((s.duty_cycle() - 0.105).abs() < 0.001);
    }

    #[test]
    fn degenerate_configs_normalize_and_validate_rejects_them() {
        use crate::error::SimError;
        // A zero period builds a usable (1 ns) schedule instead of panicking...
        let cfg = PeriodicFreeze {
            first_trigger: SimTime::ZERO,
            period: SimDuration::ZERO,
            durations: DurationModel::Fixed(SimDuration::from_millis(1)),
            policy: TriggerPolicy::RearmAfterExit,
            seed: 1,
        };
        let s = FreezeSchedule::periodic(cfg.clone());
        assert!(s.is_noisy());
        assert!(!s.windows_between(SimTime::ZERO, SimTime::from_millis(10)).is_empty());
        // ...while validate reports the typed rejection.
        assert!(matches!(cfg.validate(), Err(SimError::InvalidSpec { .. })));

        let bad_gap = PeriodicFreeze {
            policy: TriggerPolicy::DeferToExit { min_gap: SimDuration::ZERO },
            period: SimDuration::from_millis(50),
            ..cfg.clone()
        };
        assert!(matches!(bad_gap.validate(), Err(SimError::InvalidSpec { .. })));

        let inverted = PeriodicFreeze {
            period: SimDuration::from_millis(50),
            durations: DurationModel::Uniform {
                lo: SimDuration::from_millis(10),
                hi: SimDuration::from_millis(2),
            },
            ..cfg
        };
        assert!(matches!(inverted.validate(), Err(SimError::InvalidSpec { .. })));
        // Sampling from the inverted band still stays within [min, max].
        let sched = FreezeSchedule::periodic(inverted);
        for (s, e) in sched.windows_between(SimTime::ZERO, SimTime::from_secs(1)) {
            let d = e.since(s);
            assert!(d >= SimDuration::from_millis(2) && d <= SimDuration::from_millis(10));
        }
    }

    #[test]
    fn span_stats_matches_a_brute_force_scan() {
        let s = FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::from_millis(333),
            period: SimDuration::from_millis(700),
            durations: DurationModel::short_smi(),
            policy: TriggerPolicy::SkipWhileFrozen,
            seed: 99,
        });
        // One independent full-window list; every interval query below is
        // checked against a plain scan of it.
        let all = s.windows_between(SimTime::ZERO, SimTime::from_secs(120));
        let mut rng = SimRng::new(5);
        for _ in 0..300 {
            let a = SimTime::from_nanos(rng.below(100_000_000_000));
            let b = SimTime::from_nanos(rng.below(100_000_000_000));
            let (count, frozen) = s.span_stats(a, b);
            let mut want_count = 0usize;
            let mut want_frozen = SimDuration::ZERO;
            if b > a {
                for &(ws, we) in &all {
                    if ws < b && we > a {
                        want_frozen += we.min(b).since(ws.max(a));
                        if ws >= a {
                            want_count += 1;
                        }
                    }
                }
            }
            assert_eq!(count, want_count, "count over [{a:?}, {b:?})");
            assert_eq!(frozen, want_frozen, "frozen over [{a:?}, {b:?})");
            assert_eq!(s.count_between(a, b), want_count);
            assert_eq!(s.frozen_between(a, b), want_frozen);
        }
    }

    #[test]
    fn cursor_cache_survives_out_of_order_queries() {
        let s = fixed(1000, 100, 500);
        // Warm the cursor far ahead, then query far behind, at the very
        // start, and ahead again — every answer must match a fresh clone.
        let probes = [
            SimTime::from_secs(500),
            SimTime::from_millis(501),
            SimTime::ZERO,
            SimTime::from_secs(250),
            SimTime::from_millis(499),
            SimTime::from_secs(700),
        ];
        let fresh = s.clone();
        for t in probes {
            assert_eq!(s.window_containing(t), fresh.clone().window_containing(t), "{t:?}");
            assert_eq!(s.unfreeze(t), fresh.clone().unfreeze(t), "{t:?}");
        }
    }

    #[test]
    fn long_horizon_queries_are_consistent() {
        let s = fixed(100, 30, 0);
        // One hour of simulated time: 36_000 windows.
        let total = s.frozen_between(SimTime::ZERO, SimTime::from_secs(3600));
        assert_eq!(total, SimDuration::from_secs(1080));
    }

    fn ms_windows(pairs: &[(u64, u64)]) -> Vec<(SimTime, SimTime)> {
        pairs.iter().map(|&(s, e)| (SimTime::from_millis(s), SimTime::from_millis(e))).collect()
    }

    #[test]
    fn explicit_windows_answer_the_same_queries_as_periodic() {
        let s = FreezeSchedule::from_windows(ms_windows(&[(500, 600), (1500, 1600)]))
            .expect("valid windows");
        assert!(s.is_noisy());
        assert!(s.config().is_none());
        assert!(s.is_frozen(SimTime::from_millis(500)));
        assert!(!s.is_frozen(SimTime::from_millis(600)));
        assert_eq!(s.unfreeze(SimTime::from_millis(550)), SimTime::from_millis(600));
        assert_eq!(
            s.next_window_after(SimTime::from_millis(700)),
            Some((SimTime::from_millis(1500), SimTime::from_millis(1600)))
        );
        assert_eq!(s.next_window_after(SimTime::from_millis(1500)), None);
        assert_eq!(
            s.advance(SimTime::from_millis(100), SimDuration::from_millis(450)),
            SimTime::from_millis(650)
        );
        assert_eq!(
            s.frozen_between(SimTime::from_millis(550), SimTime::from_millis(1600)),
            SimDuration::from_millis(150)
        );
        assert_eq!(s.count_between(SimTime::ZERO, SimTime::from_secs(4)), 2);
        // A clone answers identically.
        let c = s.clone();
        assert_eq!(c.windows_between(SimTime::ZERO, SimTime::from_secs(4)).len(), 2);
    }

    #[test]
    fn explicit_windows_reject_malformed_lists() {
        use crate::error::SimError;
        // Zero-length window.
        let zero = FreezeSchedule::from_windows(ms_windows(&[(100, 100)]));
        assert!(matches!(zero, Err(SimError::InvalidSpec { .. })));
        // Overlapping windows.
        let overlap = FreezeSchedule::from_windows(ms_windows(&[(100, 300), (200, 400)]));
        assert!(matches!(overlap, Err(SimError::InvalidSpec { .. })));
        // Out-of-order windows.
        let unsorted = FreezeSchedule::from_windows(ms_windows(&[(500, 600), (100, 200)]));
        assert!(matches!(unsorted, Err(SimError::InvalidSpec { .. })));
        // The empty list is a valid (transparent) schedule.
        let empty = FreezeSchedule::from_windows(Vec::new()).expect("empty is valid");
        assert_eq!(empty.advance(SimTime::ZERO, SimDuration::from_secs(1)), SimTime::from_secs(1));
    }

    #[test]
    fn slowdown_factor_is_range_checked() {
        use crate::error::SimError;
        let make = || fixed(1000, 100, 500);
        assert!(matches!(make().with_slowdown(0), Err(SimError::InvalidSpec { .. })));
        assert!(matches!(make().with_slowdown(1000), Err(SimError::InvalidSpec { .. })));
        assert!(make().with_slowdown(1).is_ok());
        assert!(make().with_slowdown(999).is_ok());
    }

    #[test]
    fn slowdown_windows_degrade_instead_of_freezing() {
        // Window [500, 600) ms at half throughput: the node is never
        // "frozen", and 450ms of work from t=100 spends 400ms reaching
        // the window, then needs 100ms of wall to do 50ms of work.
        let s = fixed(1000, 100, 500).with_slowdown(500).expect("valid factor");
        assert!(!s.is_frozen(SimTime::from_millis(550)));
        assert_eq!(s.unfreeze(SimTime::from_millis(550)), SimTime::from_millis(550));
        let end = s.advance(SimTime::from_millis(100), SimDuration::from_millis(450));
        assert_eq!(end, SimTime::from_millis(600));
        // Stolen time over the window is half its length.
        assert_eq!(
            s.frozen_between(SimTime::from_millis(400), SimTime::from_millis(700)),
            SimDuration::from_millis(50)
        );
        // The clone keeps the factor.
        assert_eq!(s.clone().slowdown_milli(), 500);
    }

    #[test]
    fn slowdown_advance_keeps_the_freeze_algebra() {
        let s = fixed(700, 120, 333).with_slowdown(930).expect("valid factor");
        let start = SimTime::from_millis(10);
        for work_ms in [0u64, 1, 100, 333, 700, 3000, 12345] {
            let work = SimDuration::from_millis(work_ms);
            let end = s.advance(start, work);
            // Inverse and dominance.
            assert_eq!(s.work_between(start, end), work, "work={work_ms}ms");
            assert!(end.since(start) >= work);
        }
        // Additivity, including odd nanosecond splits.
        let t = SimTime::from_millis(7);
        for (a_ns, b_ns) in [(0u64, 5u64), (5, 0), (999_999, 1), (123_456_789, 7), (1, 999)] {
            let a = SimDuration(a_ns);
            let b = SimDuration(b_ns);
            assert_eq!(s.advance(s.advance(t, a), b), s.advance(t, a + b), "a={a_ns} b={b_ns}");
        }
    }

    #[test]
    fn slowdown_span_stats_matches_a_brute_force_scan() {
        let s = FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::from_millis(333),
            period: SimDuration::from_millis(700),
            durations: DurationModel::short_smi(),
            policy: TriggerPolicy::SkipWhileFrozen,
            seed: 99,
        })
        .with_slowdown(250)
        .expect("valid factor");
        let all = s.windows_between(SimTime::ZERO, SimTime::from_secs(120));
        let done = |x: u64| (x as u128 * 250 / 1000) as u64;
        let mut rng = SimRng::new(5);
        for _ in 0..200 {
            let a = SimTime::from_nanos(rng.below(100_000_000_000));
            let b = SimTime::from_nanos(rng.below(100_000_000_000));
            let (count, stolen) = s.span_stats(a, b);
            let mut want_count = 0usize;
            let mut want_stolen = 0u64;
            if b > a {
                for &(ws, we) in &all {
                    if ws < b && we > a {
                        let lo = ws.max(a);
                        let hi = we.min(b);
                        want_stolen += (hi.0 - lo.0) - (done(hi.0 - ws.0) - done(lo.0 - ws.0));
                        if ws >= a {
                            want_count += 1;
                        }
                    }
                }
            }
            assert_eq!(count, want_count, "count over [{a:?}, {b:?})");
            assert_eq!(stolen, SimDuration(want_stolen), "stolen over [{a:?}, {b:?})");
        }
    }

    #[test]
    fn drawn_matches_the_historical_draw_order() {
        // `drawn` is the single constructor surface; the draw order (one
        // phase draw, one seed draw) is golden-digest-load-bearing.
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let period = SimDuration::from_secs(1);
        let phase = SimDuration(a.below(period.0));
        let seed = a.next();
        let cfg = PeriodicFreeze::drawn(
            period,
            DurationModel::long_smi(),
            TriggerPolicy::RearmAfterExit,
            &mut b,
        );
        assert_eq!(cfg.first_trigger, SimTime::ZERO + phase);
        assert_eq!(cfg.seed, seed);
        assert_eq!(cfg.policy, TriggerPolicy::RearmAfterExit);
        assert_eq!(a.next(), b.next(), "streams must stay in lockstep");
    }
}
