//! Per-thread engine performance counters.
//!
//! The simulation engine is pure with respect to its *results*, but the
//! experiment runner wants to know how hard the hot path worked (events
//! popped, queue pressure) to report ns/event in the run manifest. These
//! counters are deliberately kept out of every result type: they live in
//! plain thread-locals, cost two `Cell` bumps per run to maintain, and
//! are harvested by the runner worker between cells — so they can never
//! perturb a record byte. Telemetry, not simulation state.

use crate::event::QueueStats;
use std::cell::Cell;

thread_local! {
    static EVENTS_POPPED: Cell<u64> = const { Cell::new(0) };
    static QUEUE_PEAK: Cell<u64> = const { Cell::new(0) };
    static RUNS: Cell<u64> = const { Cell::new(0) };
}

/// Accumulated engine-side counters for the current thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnginePerf {
    /// Events popped from the engine's event queue.
    pub events_popped: u64,
    /// Highest queue length observed in any single run.
    pub queue_peak: u64,
    /// Engine runs completed.
    pub runs: u64,
}

/// Fold one finished engine run's queue counters into this thread's
/// totals. Called by the engine at the end of every run.
pub fn record_run(stats: QueueStats) {
    EVENTS_POPPED.with(|c| c.set(c.get().wrapping_add(stats.pops)));
    QUEUE_PEAK.with(|c| c.set(c.get().max(stats.peak_len as u64)));
    RUNS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// This thread's accumulated counters, without resetting them.
pub fn snapshot() -> EnginePerf {
    EnginePerf {
        events_popped: EVENTS_POPPED.with(Cell::get),
        queue_peak: QUEUE_PEAK.with(Cell::get),
        runs: RUNS.with(Cell::get),
    }
}

/// This thread's accumulated counters, resetting them to zero — the
/// runner worker brackets each cell with `take` to attribute counts.
pub fn take() -> EnginePerf {
    let out = snapshot();
    EVENTS_POPPED.with(|c| c.set(0));
    QUEUE_PEAK.with(|c| c.set(0));
    RUNS.with(|c| c.set(0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_take_cycle() {
        let _ = take();
        assert_eq!(snapshot(), EnginePerf::default());
        record_run(QueueStats { pops: 10, peak_len: 4 });
        record_run(QueueStats { pops: 5, peak_len: 9 });
        let got = take();
        assert_eq!(got, EnginePerf { events_popped: 15, queue_peak: 9, runs: 2 });
        assert_eq!(snapshot(), EnginePerf::default(), "take resets");
    }
}
