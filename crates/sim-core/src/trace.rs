//! Simulation traces.
//!
//! A [`Trace`] is an append-only record of notable instants in a simulated
//! run: freeze windows entered/left, MPI operations, scheduler decisions,
//! profiler samples. Traces feed the SMI detector (which must *recover*
//! the freeze schedule from timing evidence alone) and the attribution
//! model (which shows how a sampling profiler misreports SMM time).

use crate::time::{SimDuration, SimTime};

/// One trace record.
#[derive(Clone, Debug, PartialEq, jsonio::ToJson)]
pub struct TraceEvent {
    /// Wall time of the event.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// Categories of trace record.
#[derive(Clone, Debug, PartialEq, jsonio::ToJson)]
pub enum TraceKind {
    /// The node entered SMM.
    SmmEnter,
    /// The node left SMM after residing for `residency`.
    SmmExit {
        /// Time spent in SMM for this window.
        residency: SimDuration,
    },
    /// A compute phase completed on a thread or rank.
    ComputeDone {
        /// Identifier of the thread/rank.
        actor: u32,
        /// Work performed.
        work: SimDuration,
    },
    /// An MPI operation completed.
    MpiDone {
        /// Rank that completed the operation.
        rank: u32,
        /// Human-readable op name ("send", "allreduce", ...).
        op: &'static str,
    },
    /// A scheduler context switch placed `thread` on `cpu`.
    Schedule {
        /// Logical CPU index.
        cpu: u32,
        /// Thread id, or `None` for idle.
        thread: Option<u32>,
    },
    /// A profiler sample attributed to `symbol`.
    Sample {
        /// Symbol the sample was charged to.
        symbol: u32,
    },
    /// Free-form annotation.
    Note(String),
}

/// An append-only event log, optionally disabled to avoid overhead.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        Trace { events: Vec::new(), enabled: true }
    }

    /// A trace that drops everything (zero-cost recording).
    pub fn disabled() -> Self {
        Trace { events: Vec::new(), enabled: false }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append a record (no-op when disabled).
    pub fn record(&mut self, time: SimTime, kind: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent { time, kind });
        }
    }

    /// All records, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records within `[a, b)`, assuming monotone insertion times.
    pub fn between(&self, a: SimTime, b: SimTime) -> &[TraceEvent] {
        let lo = self.events.partition_point(|e| e.time < a);
        let hi = self.events.partition_point(|e| e.time < b);
        &self.events[lo..hi]
    }

    /// Iterate over SMM windows recorded as enter/exit pairs.
    pub fn smm_windows(&self) -> Vec<(SimTime, SimTime)> {
        let mut out = Vec::new();
        let mut open: Option<SimTime> = None;
        for e in &self.events {
            match e.kind {
                TraceKind::SmmEnter => open = Some(e.time),
                TraceKind::SmmExit { .. } => {
                    if let Some(start) = open.take() {
                        out.push((start, e.time));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::SmmEnter);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_keeps_order() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(1), TraceKind::SmmEnter);
        t.record(
            SimTime::from_millis(3),
            TraceKind::SmmExit { residency: SimDuration::from_millis(2) },
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].time, SimTime::from_millis(1));
    }

    #[test]
    fn smm_windows_pairs_enter_exit() {
        let mut t = Trace::enabled();
        for i in 0..3u64 {
            t.record(SimTime::from_millis(i * 100), TraceKind::SmmEnter);
            t.record(
                SimTime::from_millis(i * 100 + 10),
                TraceKind::SmmExit { residency: SimDuration::from_millis(10) },
            );
        }
        let wins = t.smm_windows();
        assert_eq!(wins.len(), 3);
        assert_eq!(wins[1], (SimTime::from_millis(100), SimTime::from_millis(110)));
    }

    #[test]
    fn between_slices_by_time() {
        let mut t = Trace::enabled();
        for i in 0..10u64 {
            t.record(SimTime::from_millis(i), TraceKind::Sample { symbol: i as u32 });
        }
        let mid = t.between(SimTime::from_millis(3), SimTime::from_millis(6));
        assert_eq!(mid.len(), 3);
        assert_eq!(mid[0].time, SimTime::from_millis(3));
    }

    #[test]
    fn unmatched_exit_is_ignored() {
        let mut t = Trace::enabled();
        t.record(
            SimTime::from_millis(5),
            TraceKind::SmmExit { residency: SimDuration::from_millis(1) },
        );
        assert!(t.smm_windows().is_empty());
    }
}
