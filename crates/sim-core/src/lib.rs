//! # sim-core — deterministic discrete-event simulation core
//!
//! Foundation crate of the SMI noise laboratory, a reproduction of
//! *"The Effects of System Management Interrupts on Multithreaded,
//! Hyper-threaded, and MPI Applications"* (Macarenco, Frye, Hamlin,
//! Karavanic — ICPP 2016).
//!
//! Everything in the laboratory is built on four ideas from this crate:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//!   with the wall-time vs work-time distinction documented in [`time`].
//! * [`FreezeSchedule`] — the model of System Management Mode residency:
//!   node-global windows of wall time during which no host work proceeds.
//!   Its `advance`/`work_between` pair is the algebra the whole
//!   reproduction rests on.
//! * [`SimRng`] — a deterministic xoshiro256++ generator with
//!   hierarchical, label-derived seeding, so every experiment cell is
//!   independently reproducible.
//! * [`EventQueue`] — a FIFO-tie-broken discrete-event queue used by the
//!   node scheduler and the cluster simulator.
//!
//! Descriptive statistics ([`stats`]) and trace recording ([`trace`])
//! round out the toolkit.
//!
//! ```
//! use sim_core::*;
//!
//! // The paper's long SMI class: 100-110 ms in SMM, one trigger per second.
//! let schedule = FreezeSchedule::periodic(PeriodicFreeze {
//!     first_trigger: SimTime::from_millis(400),
//!     period: SimDuration::from_secs(1),
//!     durations: DurationModel::long_smi(),
//!     policy: TriggerPolicy::SkipWhileFrozen,
//!     seed: 42,
//! });
//!
//! // Ten seconds of application work stretches by ~10.5 % of wall time...
//! let end = schedule.advance(SimTime::ZERO, SimDuration::from_secs(10));
//! assert!(end > SimTime::from_secs(11) && end < SimTime::from_millis(11_300));
//!
//! // ...and the algebra is exactly invertible.
//! assert_eq!(schedule.work_between(SimTime::ZERO, end), SimDuration::from_secs(10));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod event;
pub mod freeze;
pub mod perf;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use error::{BlockedOp, BlockedOpKind, SimError};
pub use event::{EventQueue, QueueStats};
pub use freeze::{DurationModel, FreezeSchedule, PeriodicFreeze, TriggerPolicy};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceKind};
