//! Simulated time.
//!
//! All simulation components share a single notion of time: an unsigned
//! nanosecond count since the start of the simulated run ([`SimTime`]) and
//! nanosecond intervals ([`SimDuration`]).
//!
//! Two *kinds* of time appear throughout the laboratory:
//!
//! * **wall time** — what a wall clock (or the TSC) observes, including
//!   intervals during which the node is frozen inside System Management
//!   Mode, and
//! * **work time** — time during which the node is actually executing
//!   host software.
//!
//! Both are represented with the same types; the
//! [`FreezeSchedule`](crate::freeze::FreezeSchedule) maps between them.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, jsonio::ToJson)]
pub struct SimTime(pub u64);

/// A length of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, jsonio::ToJson)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any event in a realistic simulation.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds since simulation start, as a float (lossy for huge values).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Milliseconds since simulation start, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "SimTime::since: earlier {earlier:?} > self {self:?}");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// A negative, `NaN`, or oversized input is a caller bug: debug builds
    /// assert, release builds saturate deterministically (negative/`NaN`
    /// to zero, overflow to [`SimDuration::MAX`]) so the simulation path
    /// never aborts a measurement run.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "SimDuration::from_secs_f64: invalid seconds {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }
    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    ///
    /// A negative or `NaN` factor is a caller bug: debug builds assert,
    /// release builds saturate (the float-to-int cast clamps to zero /
    /// [`SimDuration::MAX`]) so the simulation path never aborts.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k.is_finite() && k >= 0.0, "SimDuration::mul_f64: invalid factor {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}
impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}
impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}
impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(rhs <= *self, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}
impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_ns(self.0))
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}
impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_nanos(1_000_000_000));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_and_saturating() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(8);
        assert_eq!(b.since(a), SimDuration::from_millis(3));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn float_conversions() {
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_millis(1));
        assert!((SimTime::from_millis(250).as_millis_f64() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(150));
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "invalid seconds"))]
    fn from_secs_f64_rejects_negative_in_debug_and_saturates_in_release() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(4)), "4.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
