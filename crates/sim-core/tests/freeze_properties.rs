//! Property-based tests for the freeze-schedule algebra.
//!
//! These invariants are what make it sound to run node-local simulations
//! in work time and map the results through the schedule afterwards (see
//! `machine::NodeExecutor`), so they are tested exhaustively here.

use proptest::prelude::*;
use sim_core::{
    DurationModel, FreezeSchedule, PeriodicFreeze, SimDuration, SimTime, TriggerPolicy,
};

/// Strategy producing arbitrary (but sane) periodic schedules.
fn schedule_strategy() -> impl Strategy<Value = FreezeSchedule> {
    (
        1_000_000u64..2_000_000_000,   // period: 1ms .. 2s
        0u64..2_000_000_000,           // phase
        1_000u64..500_000_000,         // duration lo: 1us .. 500ms
        0u64..200_000_000,             // duration spread
        any::<u64>(),                  // seed
        prop_oneof![
            Just(TriggerPolicy::SkipWhileFrozen),
            Just(TriggerPolicy::DeferToExit { min_gap: SimDuration::from_micros(100) }),
            Just(TriggerPolicy::RearmAfterExit),
        ],
    )
        .prop_map(|(period, phase, lo, spread, seed, policy)| {
            FreezeSchedule::periodic(PeriodicFreeze {
                first_trigger: SimTime::from_nanos(phase),
                period: SimDuration::from_nanos(period),
                durations: DurationModel::Uniform {
                    lo: SimDuration::from_nanos(lo),
                    hi: SimDuration::from_nanos(lo + spread),
                },
                policy,
                seed,
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn advance_zero_is_identity(s in schedule_strategy(), t in 0u64..10_000_000_000) {
        let t = SimTime::from_nanos(t);
        prop_assert_eq!(s.advance(t, SimDuration::ZERO), t);
    }

    #[test]
    fn wall_time_dominates_work_time(
        s in schedule_strategy(),
        t in 0u64..5_000_000_000,
        w in 0u64..5_000_000_000,
    ) {
        let t = SimTime::from_nanos(t);
        let w = SimDuration::from_nanos(w);
        let end = s.advance(t, w);
        prop_assert!(end >= t + w, "end {:?} < start {:?} + work {:?}", end, t, w);
    }

    #[test]
    fn advance_is_additive(
        s in schedule_strategy(),
        t in 0u64..3_000_000_000,
        a in 0u64..2_000_000_000,
        b in 0u64..2_000_000_000,
    ) {
        let t = SimTime::from_nanos(t);
        let a = SimDuration::from_nanos(a);
        let b = SimDuration::from_nanos(b);
        let two_step = s.advance(s.advance(t, a), b);
        let one_step = s.advance(t, a + b);
        prop_assert_eq!(two_step, one_step);
    }

    #[test]
    fn advance_is_monotone_in_work(
        s in schedule_strategy(),
        t in 0u64..3_000_000_000,
        a in 0u64..2_000_000_000,
        extra in 1u64..1_000_000_000,
    ) {
        let t = SimTime::from_nanos(t);
        let small = SimDuration::from_nanos(a);
        let large = SimDuration::from_nanos(a + extra);
        prop_assert!(s.advance(t, large) > s.advance(t, small));
    }

    #[test]
    fn advance_is_monotone_in_start(
        s in schedule_strategy(),
        t in 0u64..3_000_000_000,
        dt in 0u64..2_000_000_000,
        w in 1u64..2_000_000_000,
    ) {
        let t1 = SimTime::from_nanos(t);
        let t2 = SimTime::from_nanos(t + dt);
        let w = SimDuration::from_nanos(w);
        prop_assert!(s.advance(t2, w) >= s.advance(t1, w));
    }

    #[test]
    fn work_between_inverts_advance(
        s in schedule_strategy(),
        t in 0u64..3_000_000_000,
        w in 0u64..3_000_000_000,
    ) {
        let t = SimTime::from_nanos(t);
        let w = SimDuration::from_nanos(w);
        let end = s.advance(t, w);
        prop_assert_eq!(s.work_between(t, end), w);
    }

    #[test]
    fn frozen_plus_work_equals_interval(
        s in schedule_strategy(),
        a in 0u64..5_000_000_000,
        len in 0u64..5_000_000_000,
    ) {
        let a = SimTime::from_nanos(a);
        let b = a + SimDuration::from_nanos(len);
        let frozen = s.frozen_between(a, b);
        let work = s.work_between(a, b);
        prop_assert_eq!(frozen + work, b.since(a));
    }

    #[test]
    fn frozen_between_is_superadditive_over_split(
        s in schedule_strategy(),
        a in 0u64..4_000_000_000,
        l1 in 0u64..2_000_000_000,
        l2 in 0u64..2_000_000_000,
    ) {
        // Frozen time is exactly additive over adjacent intervals.
        let a = SimTime::from_nanos(a);
        let m = a + SimDuration::from_nanos(l1);
        let b = m + SimDuration::from_nanos(l2);
        prop_assert_eq!(
            s.frozen_between(a, b),
            s.frozen_between(a, m) + s.frozen_between(m, b)
        );
    }

    #[test]
    fn unfreeze_is_idempotent_and_unfrozen(
        s in schedule_strategy(),
        t in 0u64..5_000_000_000,
    ) {
        let t = SimTime::from_nanos(t);
        let u = s.unfreeze(t);
        prop_assert!(u >= t);
        prop_assert!(!s.is_frozen(u));
        prop_assert_eq!(s.unfreeze(u), u);
    }

    #[test]
    fn windows_are_disjoint_and_sorted(
        s in schedule_strategy(),
        horizon in 1u64..20_000_000_000,
    ) {
        let wins = s.windows_between(SimTime::ZERO, SimTime::from_nanos(horizon));
        for w in wins.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
        }
        for &(st, en) in &wins {
            prop_assert!(st < en, "empty or inverted window ({:?},{:?})", st, en);
        }
    }

    #[test]
    fn clone_is_observationally_equal(
        s in schedule_strategy(),
        probe in 0u64..10_000_000_000,
    ) {
        let c = s.clone();
        let t = SimTime::from_nanos(probe);
        prop_assert_eq!(s.is_frozen(t), c.is_frozen(t));
        prop_assert_eq!(
            s.advance(t, SimDuration::from_millis(10)),
            c.advance(t, SimDuration::from_millis(10))
        );
    }

    #[test]
    fn no_noise_schedule_is_identity(
        t in 0u64..u64::MAX / 4,
        w in 0u64..u64::MAX / 4,
    ) {
        let s = FreezeSchedule::none();
        let t = SimTime::from_nanos(t);
        let w = SimDuration::from_nanos(w);
        prop_assert_eq!(s.advance(t, w), t + w);
        prop_assert_eq!(s.work_between(t, t + w), w);
    }
}
