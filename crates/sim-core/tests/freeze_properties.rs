//! Property-based tests for the freeze-schedule algebra.
//!
//! These invariants are what make it sound to run node-local simulations
//! in work time and map the results through the schedule afterwards (see
//! `machine::NodeExecutor`), so they are tested exhaustively here.

use quickprop::{check, Gen};
use sim_core::{
    DurationModel, FreezeSchedule, PeriodicFreeze, SimDuration, SimTime, TriggerPolicy,
};

/// An arbitrary (but sane) periodic schedule.
fn schedule(g: &mut Gen) -> FreezeSchedule {
    let period = g.u64(1_000_000..2_000_000_000); // 1ms .. 2s
    let phase = g.u64(0..2_000_000_000);
    let lo = g.u64(1_000..500_000_000); // 1us .. 500ms
    let spread = g.u64(0..200_000_000);
    let seed = g.any_u64();
    let policy = g.pick(&[
        TriggerPolicy::SkipWhileFrozen,
        TriggerPolicy::DeferToExit { min_gap: SimDuration::from_micros(100) },
        TriggerPolicy::RearmAfterExit,
    ]);
    FreezeSchedule::periodic(PeriodicFreeze {
        first_trigger: SimTime::from_nanos(phase),
        period: SimDuration::from_nanos(period),
        durations: DurationModel::Uniform {
            lo: SimDuration::from_nanos(lo),
            hi: SimDuration::from_nanos(lo + spread),
        },
        policy,
        seed,
    })
}

#[test]
fn advance_zero_is_identity() {
    check("advance_zero_is_identity", 128, |g| {
        let s = schedule(g);
        let t = SimTime::from_nanos(g.u64(0..10_000_000_000));
        assert_eq!(s.advance(t, SimDuration::ZERO), t);
    });
}

#[test]
fn wall_time_dominates_work_time() {
    check("wall_time_dominates_work_time", 128, |g| {
        let s = schedule(g);
        let t = SimTime::from_nanos(g.u64(0..5_000_000_000));
        let w = SimDuration::from_nanos(g.u64(0..5_000_000_000));
        let end = s.advance(t, w);
        assert!(end >= t + w, "end {end:?} < start {t:?} + work {w:?}");
    });
}

#[test]
fn advance_is_additive() {
    check("advance_is_additive", 128, |g| {
        let s = schedule(g);
        let t = SimTime::from_nanos(g.u64(0..3_000_000_000));
        let a = SimDuration::from_nanos(g.u64(0..2_000_000_000));
        let b = SimDuration::from_nanos(g.u64(0..2_000_000_000));
        let two_step = s.advance(s.advance(t, a), b);
        let one_step = s.advance(t, a + b);
        assert_eq!(two_step, one_step);
    });
}

#[test]
fn advance_is_monotone_in_work() {
    check("advance_is_monotone_in_work", 128, |g| {
        let s = schedule(g);
        let t = SimTime::from_nanos(g.u64(0..3_000_000_000));
        let a = g.u64(0..2_000_000_000);
        let extra = g.u64(1..1_000_000_000);
        let small = SimDuration::from_nanos(a);
        let large = SimDuration::from_nanos(a + extra);
        assert!(s.advance(t, large) > s.advance(t, small));
    });
}

#[test]
fn advance_is_monotone_in_start() {
    check("advance_is_monotone_in_start", 128, |g| {
        let s = schedule(g);
        let t = g.u64(0..3_000_000_000);
        let dt = g.u64(0..2_000_000_000);
        let w = SimDuration::from_nanos(g.u64(1..2_000_000_000));
        let t1 = SimTime::from_nanos(t);
        let t2 = SimTime::from_nanos(t + dt);
        assert!(s.advance(t2, w) >= s.advance(t1, w));
    });
}

#[test]
fn work_between_inverts_advance() {
    check("work_between_inverts_advance", 128, |g| {
        let s = schedule(g);
        let t = SimTime::from_nanos(g.u64(0..3_000_000_000));
        let w = SimDuration::from_nanos(g.u64(0..3_000_000_000));
        let end = s.advance(t, w);
        assert_eq!(s.work_between(t, end), w);
    });
}

#[test]
fn frozen_plus_work_equals_interval() {
    check("frozen_plus_work_equals_interval", 128, |g| {
        let s = schedule(g);
        let a = SimTime::from_nanos(g.u64(0..5_000_000_000));
        let b = a + SimDuration::from_nanos(g.u64(0..5_000_000_000));
        let frozen = s.frozen_between(a, b);
        let work = s.work_between(a, b);
        assert_eq!(frozen + work, b.since(a));
    });
}

#[test]
fn frozen_between_is_superadditive_over_split() {
    check("frozen_between_is_superadditive_over_split", 128, |g| {
        // Frozen time is exactly additive over adjacent intervals.
        let s = schedule(g);
        let a = SimTime::from_nanos(g.u64(0..4_000_000_000));
        let m = a + SimDuration::from_nanos(g.u64(0..2_000_000_000));
        let b = m + SimDuration::from_nanos(g.u64(0..2_000_000_000));
        assert_eq!(s.frozen_between(a, b), s.frozen_between(a, m) + s.frozen_between(m, b));
    });
}

#[test]
fn unfreeze_is_idempotent_and_unfrozen() {
    check("unfreeze_is_idempotent_and_unfrozen", 128, |g| {
        let s = schedule(g);
        let t = SimTime::from_nanos(g.u64(0..5_000_000_000));
        let u = s.unfreeze(t);
        assert!(u >= t);
        assert!(!s.is_frozen(u));
        assert_eq!(s.unfreeze(u), u);
    });
}

#[test]
fn windows_are_disjoint_and_sorted() {
    check("windows_are_disjoint_and_sorted", 128, |g| {
        let s = schedule(g);
        let horizon = g.u64(1..20_000_000_000);
        let wins = s.windows_between(SimTime::ZERO, SimTime::from_nanos(horizon));
        for w in wins.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
        }
        for &(st, en) in &wins {
            assert!(st < en, "empty or inverted window ({st:?},{en:?})");
        }
    });
}

#[test]
fn clone_is_observationally_equal() {
    check("clone_is_observationally_equal", 128, |g| {
        let s = schedule(g);
        let c = s.clone();
        let t = SimTime::from_nanos(g.u64(0..10_000_000_000));
        assert_eq!(s.is_frozen(t), c.is_frozen(t));
        assert_eq!(
            s.advance(t, SimDuration::from_millis(10)),
            c.advance(t, SimDuration::from_millis(10))
        );
    });
}

#[test]
fn no_noise_schedule_is_identity() {
    check("no_noise_schedule_is_identity", 128, |g| {
        let s = FreezeSchedule::none();
        let t = SimTime::from_nanos(g.u64(0..u64::MAX / 4));
        let w = SimDuration::from_nanos(g.u64(0..u64::MAX / 4));
        assert_eq!(s.advance(t, w), t + w);
        assert_eq!(s.work_between(t, t + w), w);
    });
}
