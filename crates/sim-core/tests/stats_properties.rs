//! Property-based tests for the experiment-design statistics kernels
//! (`sim_core::stats`): the exact-merge streaming moments, the seeded
//! bootstrap, and the t-based confidence intervals.
//!
//! These invariants back the adaptive sampler (DESIGN.md §15): a cell's
//! statistics must not depend on how repetitions were split across
//! workers, a bootstrap interval must be a pure function of (sample,
//! seed), and no degenerate sample — empty, single, constant — may
//! abort a campaign.

use quickprop::{check, Gen};
use sim_core::stats::{bootstrap_ci_mean, percentile_checked, t_ci_mean, Ci, ExactSum, Moments};
use sim_core::SimRng;

/// The exact-sum mean — the estimator the intervals are centred on.
/// (The naive `stats::mean` slice helper accumulates f64 rounding and
/// can drift an ulp away from it.)
fn exact_mean(xs: &[f64]) -> f64 {
    let mut m = Moments::new();
    for &x in xs {
        m.push(x);
    }
    m.mean()
}

/// A plausible measurement sample: positive seconds spanning several
/// orders of magnitude, occasionally constant.
fn sample(g: &mut Gen, len: std::ops::Range<usize>) -> Vec<f64> {
    if g.below(8) == 0 {
        let v = g.u64(1..1_000_000) as f64 / 1000.0;
        return vec![v; g.usize(len)];
    }
    g.vec(len, |g| {
        let mag = g.u64(1..1_000_000_000) as f64;
        let scale = [1e-6, 1e-3, 1.0, 1e3][g.below(4) as usize];
        mag * scale / 1000.0
    })
}

#[test]
fn moments_merge_of_any_split_is_bit_exact() {
    check("moments_merge_of_any_split_is_bit_exact", 256, |g| {
        let xs = sample(g, 0..40);
        let mut whole = Moments::new();
        for &x in &xs {
            whole.push(x);
        }
        let cut = g.usize(0..xs.len() + 1);
        let mut left = Moments::new();
        let mut right = Moments::new();
        for &x in &xs[..cut] {
            left.push(x);
        }
        for &x in &xs[cut..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.mean().to_bits(), whole.mean().to_bits(), "mean differs at cut {cut}");
        assert_eq!(
            left.variance().to_bits(),
            whole.variance().to_bits(),
            "variance differs at cut {cut}"
        );
        assert_eq!(left.min().to_bits(), whole.min().to_bits());
        assert_eq!(left.max().to_bits(), whole.max().to_bits());
    });
}

#[test]
fn moments_merge_is_commutative() {
    check("moments_merge_is_commutative", 128, |g| {
        let a = sample(g, 0..20);
        let b = sample(g, 0..20);
        let mut ma = Moments::new();
        let mut mb = Moments::new();
        for &x in &a {
            ma.push(x);
        }
        for &x in &b {
            mb.push(x);
        }
        let mut ab = ma.clone();
        ab.merge(&mb);
        let mut ba = mb;
        ba.merge(&ma);
        assert_eq!(ab.mean().to_bits(), ba.mean().to_bits());
        assert_eq!(ab.variance().to_bits(), ba.variance().to_bits());
    });
}

#[test]
fn exact_sum_is_permutation_invariant() {
    check("exact_sum_is_permutation_invariant", 128, |g| {
        let mut xs = sample(g, 1..30);
        // Mix in negatives so both magnitude registers participate.
        for x in xs.iter_mut() {
            if g.bool() {
                *x = -*x;
            }
        }
        let mut fwd = ExactSum::new();
        for &x in &xs {
            fwd.add(x);
        }
        // A deterministic shuffle drawn from the same generator.
        let mut shuffled = xs.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, g.below(i as u64 + 1) as usize);
        }
        let mut any = ExactSum::new();
        for &x in &shuffled {
            any.add(x);
        }
        assert_eq!(fwd.value().to_bits(), any.value().to_bits());
    });
}

#[test]
fn bootstrap_ci_is_seed_deterministic_and_contains_the_mean() {
    check("bootstrap_ci_is_seed_deterministic_and_contains_the_mean", 96, |g| {
        let xs = sample(g, 1..20);
        let seed = g.any_u64();
        let resamples = g.u32(10..300);
        let a = bootstrap_ci_mean(&xs, resamples, &mut SimRng::new(seed));
        let b = bootstrap_ci_mean(&xs, resamples, &mut SimRng::new(seed));
        assert_eq!(a.lo.to_bits(), b.lo.to_bits(), "bootstrap must be a pure function of seed");
        assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        let m = exact_mean(&xs);
        assert!(a.contains(m), "CI {a:?} must contain the sample mean {m}");
        assert!(a.lo <= a.hi);
        // Resample means cannot leave the sample's own range (modulo an
        // ulp of rounding in the exact-sum extraction).
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            a.lo >= lo * (1.0 - 1e-12) && a.hi <= hi * (1.0 + 1e-12),
            "CI {a:?} outside sample range [{lo}, {hi}]"
        );
    });
}

#[test]
fn intervals_are_total_on_degenerate_samples() {
    check("intervals_are_total_on_degenerate_samples", 64, |g| {
        let seed = g.any_u64();
        // n = 0, 1, 2 and constant samples: never panic, always sane.
        assert_eq!(t_ci_mean(&[]), Ci::unknown());
        assert_eq!(bootstrap_ci_mean(&[], 50, &mut SimRng::new(seed)), Ci::unknown());
        let x = g.u64(1..1_000_000) as f64 / 997.0;
        assert_eq!(t_ci_mean(&[x]), Ci::unknown());
        assert_eq!(bootstrap_ci_mean(&[x], 50, &mut SimRng::new(seed)), Ci::point(x));
        let pair = [x, x * 1.5];
        let t = t_ci_mean(&pair);
        assert!(t.contains(exact_mean(&pair)));
        let b = bootstrap_ci_mean(&pair, 50, &mut SimRng::new(seed));
        assert!(b.contains(exact_mean(&pair)));
        let constant = vec![x; g.usize(2..12)];
        assert_eq!(t_ci_mean(&constant), Ci::point(x));
        assert_eq!(bootstrap_ci_mean(&constant, 50, &mut SimRng::new(seed)), Ci::point(x));
        assert_eq!(t_ci_mean(&constant).rel_half_width(), 0.0);
    });
}

#[test]
fn t_ci_contains_mean_and_narrows_with_n() {
    check("t_ci_contains_mean_and_narrows_with_n", 96, |g| {
        let xs = sample(g, 2..30);
        let ci = t_ci_mean(&xs);
        assert!(ci.lo <= ci.hi);
        assert!(ci.contains(exact_mean(&xs)), "t-CI must contain the sample mean");
        // Appending an exact copy of the sample keeps the mean and the
        // stddev but doubles n: the interval can only tighten.
        let doubled: Vec<f64> = xs.iter().chain(&xs).cloned().collect();
        let ci2 = t_ci_mean(&doubled);
        assert!(
            ci2.half_width() <= ci.half_width() + 1e-9 * ci.half_width().abs(),
            "more repetitions must not widen the interval: {ci:?} -> {ci2:?}"
        );
    });
}

#[test]
fn percentile_checked_is_total_and_monotone() {
    check("percentile_checked_is_total_and_monotone", 128, |g| {
        let mut xs = sample(g, 0..25);
        xs.sort_unstable_by(f64::total_cmp);
        let q1 = g.below(1001) as f64 / 1000.0;
        let q2 = g.below(1001) as f64 / 1000.0;
        let (qlo, qhi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        match (percentile_checked(&xs, qlo), percentile_checked(&xs, qhi)) {
            (Some(a), Some(b)) => {
                assert!(!xs.is_empty());
                assert!(a <= b, "percentile must be monotone in q: p({qlo})={a} > p({qhi})={b}");
            }
            (None, None) => assert!(xs.is_empty()),
            other => panic!("inconsistent totality: {other:?}"),
        }
        assert_eq!(percentile_checked(&xs, 1.5), None);
        assert_eq!(percentile_checked(&xs, -0.1), None);
    });
}
