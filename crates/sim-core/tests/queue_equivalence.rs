//! Byte-equivalence oracle for the event queue.
//!
//! The production `EventQueue` (a bucketed calendar queue since the
//! hot-path optimization) must be observationally identical to the
//! original `BinaryHeap<Reverse<Entry>>` implementation, which is kept
//! here — frozen — as the reference. Identical random push/pop schedules
//! must yield identical `(time, seq, payload)` streams, including FIFO
//! order among same-timestamp events and arbitrary interleavings of
//! pushes and pops. This is what makes any queue swap mergeable at all:
//! the engine's outputs are a function of this stream.

use quickprop::check;
use sim_core::{EventQueue, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The original heap-based queue, copied at the point the calendar queue
/// replaced it. Do not "fix" or modernize this type: its behavior *is*
/// the spec.
struct ReferenceQueue<T> {
    heap: BinaryHeap<Reverse<RefEntry<T>>>,
    seq: u64,
}

struct RefEntry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for RefEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for RefEntry<T> {}
impl<T> PartialOrd for RefEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for RefEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<T> ReferenceQueue<T> {
    fn new() -> Self {
        ReferenceQueue { heap: BinaryHeap::new(), seq: 0 }
    }
    fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(RefEntry { time, seq, payload }));
    }
    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.seq, e.payload))
    }
    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Drive both queues through one interleaved schedule, comparing every
/// observable after every operation. Pop results carry the payload,
/// which equals the push index — so matching payload streams prove the
/// seq ordering matches too (each payload is pushed exactly once).
fn drive_schedule(ops: &[(bool, u64)], // (is_push, time_ns) — pops ignore the number
) {
    let mut new_q: EventQueue<u64> = EventQueue::new();
    let mut ref_q: ReferenceQueue<u64> = ReferenceQueue::new();
    let mut next_payload = 0u64;
    for &(is_push, t_ns) in ops {
        if is_push {
            let t = SimTime::from_nanos(t_ns);
            new_q.push(t, next_payload);
            ref_q.push(t, next_payload);
            next_payload += 1;
        } else {
            let got = new_q.pop();
            let want = ref_q.pop().map(|(t, _seq, p)| (t, p));
            assert_eq!(got, want, "pop diverged after {next_payload} pushes");
        }
        assert_eq!(new_q.len(), ref_q.len(), "len diverged");
        assert_eq!(new_q.peek_time(), ref_q.peek_time(), "peek diverged");
        assert_eq!(new_q.is_empty(), ref_q.len() == 0);
    }
    // Drain: the full remaining streams must match element-for-element.
    loop {
        let got = new_q.pop();
        let want = ref_q.pop().map(|(t, _seq, p)| (t, p));
        assert_eq!(got, want, "drain diverged");
        if got.is_none() {
            break;
        }
    }
}

#[test]
fn random_interleaved_schedules_match_reference() {
    check("queue_equivalence_random", 200, |g| {
        let n_ops = g.usize(1..400);
        let ops: Vec<(bool, u64)> = (0..n_ops)
            .map(|_| {
                // Pop-biased ~1/3 of the time so queues drain and refill;
                // times span a small range to force same-time collisions.
                let is_push = g.below(3) != 0;
                (is_push, g.below(50_000))
            })
            .collect();
        drive_schedule(&ops);
    });
}

#[test]
fn near_monotone_engine_shape_matches_reference() {
    check("queue_equivalence_monotone", 60, |g| {
        // The engine's pattern: each pop re-arms a push slightly in the
        // future, so event times are nearly sorted — the case the
        // calendar queue is tuned for (and where bucket-rotation bugs
        // would hide).
        let mut ops = Vec::new();
        let mut t = 0u64;
        for _ in 0..g.usize(10..120) {
            t += g.below(2_000_000);
            ops.push((true, t));
            if g.bool() {
                ops.push((false, 0));
            }
        }
        for _ in 0..200 {
            ops.push((false, 0));
        }
        drive_schedule(&ops);
    });
}

#[test]
fn same_timestamp_bursts_are_fifo_like_reference() {
    check("queue_equivalence_bursts", 60, |g| {
        // Many events at exactly the same instant: order must be pure
        // push order (seq tie-break), as the heap reference defines.
        let mut ops = Vec::new();
        for round in 0..g.usize(1..8) {
            let t = (round as u64) * 1_000;
            for _ in 0..g.usize(1..64) {
                ops.push((true, t));
            }
            for _ in 0..g.usize(0..80) {
                ops.push((false, 0));
            }
        }
        drive_schedule(&ops);
    });
}

#[test]
fn far_future_and_past_reinsertions_match_reference() {
    check("queue_equivalence_span", 60, |g| {
        // Wide time spans (nanoseconds to minutes) plus re-insertions
        // earlier than already-popped times exercise overflow pages and
        // the "push before current bucket" path of a calendar queue.
        let n = g.usize(2..100);
        let ops: Vec<(bool, u64)> = (0..n)
            .map(|_| {
                let is_push = g.below(3) != 0;
                let magnitude = [1u64, 1_000, 1_000_000, 60_000_000_000][g.usize(0..4)];
                (is_push, g.below(100) * magnitude)
            })
            .collect();
        drive_schedule(&ops);
    });
}

#[test]
fn clear_resets_like_a_fresh_queue() {
    let mut q: EventQueue<u32> = EventQueue::new();
    for i in 0..100u32 {
        q.push(SimTime::from_nanos((i as u64 * 7919) % 1000), i);
    }
    q.clear();
    assert!(q.is_empty());
    assert_eq!(q.len(), 0);
    assert_eq!(q.peek_time(), None);
    // Seq restarts relative ordering exactly like a fresh queue: two
    // same-time pushes after clear still pop in push order.
    q.push(SimTime::from_nanos(5), 1);
    q.push(SimTime::from_nanos(5), 2);
    assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 1)));
    assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 2)));
    assert_eq!(q.pop(), None);
}
