//! # quickprop — a small seeded property-testing harness
//!
//! Replaces `proptest` for the laboratory's invariant suites with zero
//! external dependencies. The trade: no shrinking, in exchange for full
//! determinism and trivially reproducible failures.
//!
//! Every case draws its inputs from a generator seeded by
//! `(root seed, property name, case index)`, so a failure report names a
//! single 64-bit case seed that replays the exact inputs:
//!
//! ```text
//! quickprop: property 'makespan_is_bounded' failed at case 17 of 64
//! quickprop: replay with QUICKPROP_CASE_SEED=0x3fa9c1d2e4b80017
//! ```
//!
//! Environment knobs:
//!
//! * `QUICKPROP_SEED` — override the root seed (decimal or 0x-hex);
//! * `QUICKPROP_CASES` — scale every property's case count;
//! * `QUICKPROP_CASE_SEED` — run exactly one case with this seed
//!   (what a failure report tells you to set).
//!
//! ```
//! quickprop::check("addition_commutes", 64, |g| {
//!     let a = g.u64(0..1 << 40);
//!     let b = g.u64(0..1 << 40);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default root seed (overridden by `QUICKPROP_SEED`). The date the paper
/// was presented, like the simulation defaults elsewhere in the lab.
pub const DEFAULT_SEED: u64 = 0x2016_0816;

/// Run `cases` randomized cases of a property. Panics (propagating the
/// property's own panic) after printing a replay line on failure.
pub fn check(name: &str, cases: u64, property: impl Fn(&mut Gen)) {
    if let Some(case_seed) = env_u64("QUICKPROP_CASE_SEED") {
        let mut g = Gen::from_seed(case_seed);
        property(&mut g);
        return;
    }
    let root = env_u64("QUICKPROP_SEED").unwrap_or(DEFAULT_SEED);
    let cases = env_u64("QUICKPROP_CASES").unwrap_or(cases).max(1);
    for case in 0..cases {
        let case_seed = derive_seed(root, name, case);
        let mut g = Gen::from_seed(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
        if let Err(panic) = outcome {
            eprintln!("quickprop: property '{name}' failed at case {case} of {cases}");
            eprintln!("quickprop: replay with QUICKPROP_CASE_SEED={case_seed:#018x}");
            resume_unwind(panic);
        }
    }
}

fn env_u64(var: &str) -> Option<u64> {
    // smi-lint: allow(hermeticity): quickprop is test-harness infrastructure;
    // QUICKPROP_SEED/QUICKPROP_CASES exist precisely so a developer can replay
    // a failing case. Experiment code never links this crate.
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        // smi-lint: allow(no-panic): aborting the test run loudly beats
        // silently ignoring a typo in a replay seed.
        Err(_) => panic!("quickprop: cannot parse {var}={raw:?} as u64"),
    }
}

/// Derive a case seed from the root seed, property name, and case index.
fn derive_seed(root: u64, name: &str, case: u64) -> u64 {
    let mut h = root ^ 0x9E37_79B9_7F4A_7C15;
    for &b in name.as_bytes() {
        h = splitmix64(h ^ b as u64);
    }
    splitmix64(h ^ case)
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-case input generator (xoshiro256++ seeded via SplitMix64 —
/// the same construction as `sim_core::SimRng`, duplicated here so the
/// harness has no dependencies and can be used below `sim-core`).
pub struct Gen {
    s: [u64; 4],
}

impl Gen {
    /// A generator seeded deterministically from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut z = seed;
        let mut next = || {
            let v = splitmix64(z);
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            v
        };
        let s = [next(), next(), next(), next()];
        Gen { s: if s == [0; 4] { [1, 2, 3, 4] } else { s } }
    }

    /// Next raw 64-bit value.
    pub fn any_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        loop {
            let x = self.any_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw from a half-open `u64` range.
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range {range:?}");
        range.start + self.below(range.end - range.start)
    }

    /// Uniform draw from a half-open `u32` range.
    pub fn u32(&mut self, range: Range<u32>) -> u32 {
        self.u64(range.start as u64..range.end as u64) as u32
    }

    /// Uniform draw from a half-open `usize` range.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.u64(range.start as u64..range.end as u64) as usize
    }

    /// A coin flip.
    pub fn bool(&mut self) -> bool {
        self.any_u64() & 1 == 1
    }

    /// Pick one of the given values (proptest's `prop_oneof` over `Just`s).
    pub fn pick<T: Clone>(&mut self, options: &[T]) -> T {
        assert!(!options.is_empty(), "pick from empty slice");
        options[self.below(options.len() as u64) as usize].clone()
    }

    /// A vector with a length drawn from `len` and elements built by `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A vector of uniform `u64`s (the most common stream shape here).
    pub fn vec_u64(&mut self, len: Range<usize>, each: Range<u64>) -> Vec<u64> {
        self.vec(len, |g| g.u64(each.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Gen::from_seed(42);
        let mut b = Gen::from_seed(42);
        for _ in 0..64 {
            assert_eq!(a.any_u64(), b.any_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::from_seed(7);
        for _ in 0..10_000 {
            let v = g.u64(10..20);
            assert!((10..20).contains(&v));
        }
        let v = g.vec_u64(3..9, 0..5);
        assert!((3..9).contains(&v.len()));
        assert!(v.iter().all(|&x| x < 5));
    }

    #[test]
    fn derive_seed_separates_properties_and_cases() {
        assert_ne!(derive_seed(1, "a", 0), derive_seed(1, "b", 0));
        assert_ne!(derive_seed(1, "a", 0), derive_seed(1, "a", 1));
        assert_ne!(derive_seed(1, "a", 0), derive_seed(2, "a", 0));
    }

    #[test]
    fn check_runs_all_cases() {
        let counter = std::cell::Cell::new(0u64);
        check("counting", 17, |_| counter.set(counter.get() + 1));
        // QUICKPROP_CASES may scale this in CI; at least one case ran.
        assert!(counter.get() >= 1);
    }

    #[test]
    fn failures_propagate() {
        let result = catch_unwind(|| {
            check("always_fails", 3, |_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
