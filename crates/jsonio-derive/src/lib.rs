//! Derive macro for `jsonio::ToJson`, implemented directly against the
//! compiler's `proc_macro` API so the workspace needs no external crates
//! (no `syn`, no `quote`).
//!
//! Supported shapes — exactly the ones the laboratory's record types use,
//! mirroring serde's data model:
//!
//! * structs with named fields → JSON objects in declaration order;
//! * tuple structs with one field (newtypes like `SimTime(u64)`) →
//!   transparent, serialize the inner value;
//! * tuple structs with several fields → JSON arrays;
//! * enums: unit variants → `"Variant"`, newtype/struct variants →
//!   externally tagged `{"Variant": ...}`.
//!
//! Generic types and variant discriminants are rejected with a
//! `compile_error!` rather than silently mis-serialized.

#![deny(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `jsonio::ToJson` for a struct or enum.
#[proc_macro_derive(ToJson)]
pub fn derive_to_json(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error parses"),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if *id.to_string() == *"struct" => "struct",
        Some(TokenTree::Ident(id)) if *id.to_string() == *"enum" => "enum",
        other => return Err(format!("ToJson: expected struct or enum, found {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("ToJson: expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("ToJson: generic type {name} is not supported"));
    }

    let body = match kind {
        "struct" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                named_struct_body(&fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tuple_struct_body(n)
            }
            _ => "::jsonio::Json::Null".to_string(), // unit struct
        },
        _ => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                enum_body(&name, parse_variants(g.stream())?)?
            }
            other => return Err(format!("ToJson: malformed enum {name}: {other:?}")),
        },
    };

    Ok(format!(
        "#[automatically_derived]\n\
         impl ::jsonio::ToJson for {name} {{\n\
             fn to_json(&self) -> ::jsonio::Json {{\n\
                 {body}\n\
             }}\n\
         }}"
    ))
}

/// Skip leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if *id.to_string() == *"pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Skip a type, stopping at a top-level `,` (aware of `<...>` nesting;
/// bracketed constructs like `[T; N]` arrive as single groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err(format!("ToJson: expected field name, found {:?}", tokens.get(i)));
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("ToJson: expected ':', found {other:?}")),
        }
        skip_type(&tokens, &mut i);
        i += 1; // the ',' (or one past the end)
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        n += 1;
        skip_type(&tokens, &mut i);
        i += 1;
    }
    n
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err(format!("ToJson: expected variant name, found {:?}", tokens.get(i)));
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("ToJson: discriminant on variant {name} is not supported"));
            }
            other => return Err(format!("ToJson: expected ',' after variant, found {other:?}")),
        }
        variants.push((name, shape));
    }
    Ok(variants)
}

fn named_struct_body(fields: &[String]) -> String {
    let pushes: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("(::std::string::String::from({f:?}), ::jsonio::ToJson::to_json(&self.{f}))")
        })
        .collect();
    format!("::jsonio::Json::Obj(::std::vec![{}])", pushes.join(", "))
}

fn tuple_struct_body(n: usize) -> String {
    match n {
        0 => "::jsonio::Json::Arr(::std::vec![])".to_string(),
        1 => "::jsonio::ToJson::to_json(&self.0)".to_string(),
        n => {
            let items: Vec<String> =
                (0..n).map(|k| format!("::jsonio::ToJson::to_json(&self.{k})")).collect();
            format!("::jsonio::Json::Arr(::std::vec![{}])", items.join(", "))
        }
    }
}

fn enum_body(name: &str, variants: Vec<(String, VariantShape)>) -> Result<String, String> {
    if variants.is_empty() {
        return Err(format!("ToJson: empty enum {name} cannot be serialized"));
    }
    let mut arms = Vec::new();
    for (vname, shape) in variants {
        let arm = match shape {
            VariantShape::Unit => format!(
                "{name}::{vname} => ::jsonio::Json::Str(::std::string::String::from({vname:?}))"
            ),
            VariantShape::Tuple(1) => format!(
                "{name}::{vname}(f0) => ::jsonio::Json::Obj(::std::vec![\
                 (::std::string::String::from({vname:?}), ::jsonio::ToJson::to_json(f0))])"
            ),
            VariantShape::Tuple(n) => {
                let binders: Vec<String> = (0..n).map(|k| format!("f{k}")).collect();
                let items: Vec<String> =
                    binders.iter().map(|b| format!("::jsonio::ToJson::to_json({b})")).collect();
                format!(
                    "{name}::{vname}({}) => ::jsonio::Json::Obj(::std::vec![\
                     (::std::string::String::from({vname:?}), \
                      ::jsonio::Json::Arr(::std::vec![{}]))])",
                    binders.join(", "),
                    items.join(", ")
                )
            }
            VariantShape::Struct(fields) => {
                let binders = fields.join(", ");
                let pushes: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from({f:?}), ::jsonio::ToJson::to_json({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vname} {{ {binders} }} => ::jsonio::Json::Obj(::std::vec![\
                     (::std::string::String::from({vname:?}), \
                      ::jsonio::Json::Obj(::std::vec![{}]))])",
                    pushes.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    Ok(format!("match self {{\n    {}\n}}", arms.join(",\n    ")))
}
