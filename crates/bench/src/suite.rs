//! The engine hot-path benchmark suite behind `smi-lab bench`.
//!
//! The cases here cover exactly the paths the campaign's wall-clock is
//! dominated by: the discrete-event queue (push/pop churn and
//! same-timestamp bursts), the freeze-schedule algebra (`unfreeze`
//! lookups per message part, `advance` over compute segments, interval
//! aggregation), the node executor's fixed-point iteration, and one
//! end-to-end engine job. `benches/micro.rs` wraps the same workloads in
//! the criterion-shim targets; `smi-lab bench --json` runs them with a
//! fixed sample count and writes `BENCH_engine.json` (min/median/p95 per
//! case) — the repo's perf trajectory. Workload shapes are fixed: a
//! number recorded today must mean the same thing next year.

use crate::{measure, Summary};
use jsonio::Json;
use machine::{NodeExecutor, SmiSideEffects};
use mpi_sim::{ClusterSpec, NetworkParams, Op, RankProgram};
use sim_core::{
    DurationModel, EventQueue, FreezeSchedule, PeriodicFreeze, SimDuration, SimRng, SimTime,
    TriggerPolicy,
};
use std::hint::black_box;

/// Schema version of `BENCH_engine.json`. Schema 2 adds the seeded-
/// bootstrap 95 % confidence interval on the mean (`ci_lo_ns`,
/// `ci_hi_ns`) per case; schema-1 documents remain readable by the
/// `--gate` comparator via the `[min_ns, p95_ns]` fallback interval.
pub const BENCH_SCHEMA: u64 = 2;

/// Root seed of the per-case bootstrap streams: fixed, so a report's CI
/// is a pure function of its samples.
const BENCH_CI_SEED: u64 = 0x20160816;

/// Seeded-bootstrap 95 % CI on the mean of a case's samples, in whole
/// nanoseconds (lo floored, hi ceiled, so the printed interval always
/// contains the real one). The resampling stream is derived from the
/// case *name*, never from sample values or order of execution.
pub fn case_ci_ns(s: &Summary) -> (u64, u64) {
    let xs: Vec<f64> = s.samples_ns.iter().map(|&n| n as f64).collect();
    let mut rng = SimRng::from_path(BENCH_CI_SEED, &["bench-ci", &s.name]);
    let ci = sim_core::stats::bootstrap_ci_mean(&xs, 200, &mut rng);
    if !(ci.lo.is_finite() && ci.hi.is_finite()) {
        // Empty case: an impossible report, but never a panic.
        return (0, 0);
    }
    (ci.lo.floor().max(0.0) as u64, ci.hi.ceil() as u64)
}

/// One named benchmark case: a self-contained routine returning a
/// checksum (black-boxed by the harness so the work cannot be elided).
pub struct SuiteCase {
    /// Stable case name (keys the perf trajectory across commits).
    pub name: &'static str,
    /// The workload; called once per sample.
    pub routine: Box<dyn FnMut() -> u64>,
}

/// The paper-configuration long-SMI schedule used by the freeze cases:
/// one trigger per second, 100–110 ms residency.
fn long_schedule(seed: u64) -> FreezeSchedule {
    FreezeSchedule::periodic(PeriodicFreeze {
        first_trigger: SimTime::from_millis(137),
        period: SimDuration::from_secs(1),
        durations: DurationModel::long_smi(),
        policy: TriggerPolicy::SkipWhileFrozen,
        seed,
    })
}

/// Event-queue churn in the engine's shape: a fixed population of
/// in-flight events, each pop re-arming a slightly later event — the
/// near-monotone pattern a calendar queue is tuned for.
pub fn event_queue_near_monotone() -> u64 {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut rng = SimRng::new(7);
    let mut t = SimTime::ZERO;
    for r in 0..256u32 {
        q.push(t + SimDuration::from_nanos(rng.below(1_000_000)), r);
    }
    let mut checksum = 0u64;
    for _ in 0..20_000u32 {
        if let Some((when, r)) = q.pop() {
            t = when;
            checksum = checksum.wrapping_add(when.since(SimTime::ZERO).as_nanos() ^ r as u64);
            q.push(t + SimDuration::from_nanos(1_000 + rng.below(2_000_000)), r);
        }
    }
    while let Some((when, _)) = q.pop() {
        checksum = checksum.wrapping_add(when.since(SimTime::ZERO).as_nanos());
    }
    checksum
}

/// Same-timestamp bursts in the barrier shape: rounds of many events at
/// one instant, drained in FIFO order — the tie-break path.
pub fn event_queue_same_time_bursts() -> u64 {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut checksum = 0u64;
    for round in 0..64u64 {
        let t = SimTime::from_micros(round * 500);
        for r in 0..256u32 {
            q.push(t, r);
        }
        while let Some((_, r)) = q.pop() {
            checksum = checksum.wrapping_add(r as u64 + round);
        }
    }
    checksum
}

/// The engine's per-message-part pattern: tens of thousands of
/// near-monotone `unfreeze` lookups against a warm window cache.
pub fn freeze_unfreeze_scan(schedule: &FreezeSchedule) -> u64 {
    let mut checksum = 0u64;
    let mut t = SimTime::ZERO;
    for _ in 0..50_000u64 {
        t += SimDuration::from_micros(12_000);
        checksum = checksum.wrapping_add(schedule.unfreeze(t).since(SimTime::ZERO).as_nanos());
    }
    checksum
}

/// Compute-segment mapping: 1000 advances of 37 ms each.
pub fn freeze_advance_segments(schedule: &FreezeSchedule) -> u64 {
    let mut t = SimTime::ZERO;
    for _ in 0..1000 {
        t = schedule.advance(t, SimDuration::from_millis(37));
    }
    t.since(SimTime::ZERO).as_nanos()
}

/// Interval aggregation over one simulated hour (~3600 windows).
pub fn freeze_frozen_between_1h(schedule: &FreezeSchedule) -> u64 {
    schedule.frozen_between(SimTime::ZERO, SimTime::from_secs(3600)).as_nanos()
}

/// The node executor's fixed-point iteration over a long compute
/// segment with the full side-effect model enabled.
pub fn executor_fixed_point_100s(schedule: &FreezeSchedule) -> u64 {
    let ex = NodeExecutor::new(schedule, SmiSideEffects::default(), 8, 1.0, 0.3);
    let out = ex.execute(SimTime::ZERO, SimDuration::from_secs(100));
    out.wall.as_nanos().wrapping_add(out.windows as u64)
}

/// One end-to-end engine job: 16 ranks alternating compute and alltoall.
pub fn engine_alltoall_16rank() -> u64 {
    let spec = match ClusterSpec::wyeast(16, 1, false) {
        Ok(s) => s,
        Err(_) => return 0,
    };
    let progs: Vec<RankProgram> = (0..16)
        .map(|_| {
            RankProgram::new(
                (0..20)
                    .flat_map(|_| {
                        [
                            Op::Compute(SimDuration::from_millis(10)),
                            Op::Alltoall { bytes_per_pair: 4096 },
                        ]
                    })
                    .collect(),
            )
        })
        .collect();
    let nodes = nas::quiet_nodes(&spec);
    let net = NetworkParams::gigabit_cluster();
    match mpi_sim::run(&spec, &nodes, &progs, &net) {
        Ok(out) => out.makespan.as_nanos(),
        Err(_) => 0,
    }
}

/// The noise-subsystem hot path end-to-end: generate dense per-core
/// jitter schedules through the noise-model plugin (thousands of
/// explicit windows per core over a 60 s horizon), sweep the freeze
/// algebra across them, then scan compute segments through an
/// SMT-slowdown schedule (the degraded-throughput arithmetic). Unlike
/// the warm freeze cases, generation is deliberately inside the timed
/// routine: campaigns pay it once per (node, core, rep).
pub fn noise_model_schedule_sweep() -> u64 {
    let horizon = SimDuration::from_secs(60);
    let jitter = match noise::NoiseSpec::parse("core-jitter") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    let mut checksum = 0u64;
    for core in 0..4u32 {
        let sched = match jitter.as_model().schedule(0, core, horizon, 42) {
            Ok(s) => s,
            Err(_) => return 0,
        };
        let mut t = SimTime::ZERO;
        for _ in 0..2000u32 {
            t = sched.advance(t, SimDuration::from_micros(25_000));
            checksum = checksum.wrapping_add(sched.unfreeze(t).since(SimTime::ZERO).as_nanos());
        }
        checksum = checksum
            .wrapping_add(sched.frozen_between(SimTime::ZERO, SimTime::ZERO + horizon).as_nanos());
    }
    let smt = match noise::NoiseSpec::parse("smt-slowdown") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    let sched = match smt.as_model().schedule(0, 0, horizon, 7) {
        Ok(s) => s,
        Err(_) => return 0,
    };
    let mut t = SimTime::ZERO;
    for _ in 0..3000u32 {
        t = sched.advance(t, SimDuration::from_micros(900));
    }
    checksum.wrapping_add(t.since(SimTime::ZERO).as_nanos())
}

/// All engine suite cases, in reporting order. Schedules are built once
/// per case and reused across samples, so the freeze cases measure warm
/// lookups (the campaign's steady state), not first-touch generation.
pub fn engine_suite() -> Vec<SuiteCase> {
    let unfreeze_sched = long_schedule(1);
    let advance_sched = long_schedule(2);
    let between_sched = long_schedule(3);
    // Pre-generate so the first sample is not a generation benchmark.
    let _ = between_sched.frozen_between(SimTime::ZERO, SimTime::from_secs(3600));
    let exec_sched = long_schedule(4);
    vec![
        SuiteCase {
            name: "event_queue_near_monotone",
            routine: Box::new(|| black_box(event_queue_near_monotone())),
        },
        SuiteCase {
            name: "event_queue_same_time_bursts",
            routine: Box::new(|| black_box(event_queue_same_time_bursts())),
        },
        SuiteCase {
            name: "freeze_unfreeze_scan",
            routine: Box::new(move || black_box(freeze_unfreeze_scan(&unfreeze_sched))),
        },
        SuiteCase {
            name: "freeze_advance_segments",
            routine: Box::new(move || black_box(freeze_advance_segments(&advance_sched))),
        },
        SuiteCase {
            name: "freeze_frozen_between_1h",
            routine: Box::new(move || black_box(freeze_frozen_between_1h(&between_sched))),
        },
        SuiteCase {
            name: "executor_fixed_point_100s",
            routine: Box::new(move || black_box(executor_fixed_point_100s(&exec_sched))),
        },
        SuiteCase {
            name: "engine_alltoall_16rank",
            routine: Box::new(|| black_box(engine_alltoall_16rank())),
        },
        SuiteCase {
            name: "noise_model_schedule_sweep",
            routine: Box::new(|| black_box(noise_model_schedule_sweep())),
        },
    ]
}

/// The stable case names, for callers that verify a report is complete.
pub fn engine_suite_names() -> Vec<&'static str> {
    engine_suite().into_iter().map(|c| c.name).collect()
}

/// Run the whole engine suite at exactly `samples` timed passes per case
/// (no quick-mode scaling — `smi-lab bench` owns the sample count).
pub fn run_engine_suite(samples: usize) -> Vec<Summary> {
    engine_suite()
        .into_iter()
        .map(|mut case| measure(case.name, samples, |b| b.iter(&mut case.routine)))
        .collect()
}

/// Render suite results as the `BENCH_engine.json` document.
pub fn suite_json(samples: usize, results: &[Summary]) -> Json {
    Json::obj(vec![
        ("schema", Json::U64(BENCH_SCHEMA)),
        ("suite", Json::Str("engine".to_string())),
        ("samples", Json::U64(samples as u64)),
        (
            "benchmarks",
            Json::Arr(
                results
                    .iter()
                    .map(|s| {
                        let (ci_lo, ci_hi) = case_ci_ns(s);
                        Json::obj(vec![
                            ("name", Json::Str(s.name.clone())),
                            ("samples", Json::U64(s.samples_ns.len() as u64)),
                            ("min_ns", Json::U64(s.min_ns())),
                            ("median_ns", Json::U64(s.median_ns())),
                            ("p95_ns", Json::U64(s.p95_ns())),
                            ("mean_ns", Json::U64(s.mean_ns())),
                            ("max_ns", Json::U64(s.max_ns())),
                            ("ci_lo_ns", Json::U64(ci_lo)),
                            ("ci_hi_ns", Json::U64(ci_hi)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_cases_are_deterministic_workloads() {
        // Each routine is a pure function of its fixed inputs: two
        // invocations must produce identical checksums (the workload, not
        // the wall time, is what the trajectory compares across commits).
        assert_eq!(event_queue_near_monotone(), event_queue_near_monotone());
        assert_eq!(event_queue_same_time_bursts(), event_queue_same_time_bursts());
        let s = long_schedule(1);
        assert_eq!(freeze_unfreeze_scan(&s), freeze_unfreeze_scan(&s));
        assert_eq!(freeze_advance_segments(&s), freeze_advance_segments(&s));
        let sweep = noise_model_schedule_sweep();
        assert_ne!(sweep, 0, "noise sweep must do real work");
        assert_eq!(sweep, noise_model_schedule_sweep());
    }

    #[test]
    fn suite_runs_and_renders_json() {
        let results = run_engine_suite(2);
        assert_eq!(results.len(), engine_suite_names().len());
        let doc = suite_json(2, &results);
        assert_eq!(doc.get("schema").and_then(|s| s.as_u64()), Some(BENCH_SCHEMA));
        let benches = doc.get("benchmarks").and_then(|b| b.as_array()).expect("array");
        assert_eq!(benches.len(), results.len());
        for b in benches {
            assert_eq!(b.get("samples").and_then(|s| s.as_u64()), Some(2));
            let min = b.get("min_ns").and_then(|v| v.as_u64()).expect("min");
            let med = b.get("median_ns").and_then(|v| v.as_u64()).expect("median");
            let p95 = b.get("p95_ns").and_then(|v| v.as_u64()).expect("p95");
            assert!(min <= med && med <= p95, "ordered quantiles");
            let mean = b.get("mean_ns").and_then(|v| v.as_u64()).expect("mean");
            let lo = b.get("ci_lo_ns").and_then(|v| v.as_u64()).expect("ci lo");
            let hi = b.get("ci_hi_ns").and_then(|v| v.as_u64()).expect("ci hi");
            assert!(lo <= hi, "interval geometry");
            assert!(lo <= mean + 1 && mean <= hi + 1, "CI brackets the mean");
        }
    }

    #[test]
    fn case_ci_is_a_pure_function_of_the_samples() {
        let a = Summary { name: "stable".into(), samples_ns: vec![100, 110, 105, 130, 95] };
        let b = a.clone();
        assert_eq!(case_ci_ns(&a), case_ci_ns(&b), "same samples, same interval");
        let (lo, hi) = case_ci_ns(&a);
        assert!(lo >= 95 && hi <= 130, "bootstrap means stay inside the sample range");
        // Degenerate cases stay total.
        assert_eq!(case_ci_ns(&Summary { name: "e".into(), samples_ns: vec![] }), (0, 0));
        let one = Summary { name: "one".into(), samples_ns: vec![7] };
        assert_eq!(case_ci_ns(&one), (7, 7));
    }

    #[test]
    fn suite_has_at_least_six_cases_with_unique_names() {
        let names = engine_suite_names();
        assert!(names.len() >= 6, "perf trajectory needs >= 6 benchmarks");
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate case name");
    }
}
