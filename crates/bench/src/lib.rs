//! # bench — hermetic harnesses for every table and figure
//!
//! Each table/figure of the paper has a bench target that exercises its
//! full regeneration path at reduced replication (see `benches/`), plus
//! ablation benches for the design choices DESIGN.md calls out
//! (synchronized vs unsynchronized SMI phases, side effects on/off, SMT
//! contention) and microbenchmarks of the freeze algebra and detector.
//!
//! The bench targets are written against a small criterion-compatible
//! API ([`Criterion`], [`Bencher`], [`criterion_group!`],
//! [`criterion_main!`]) implemented here on plain `std::time::Instant` —
//! no external crates. By default every target takes a quick pass
//! (sample counts divided by ten); building with
//! `--features criterion-bench` restores full sample counts and adds
//! warmup, turning the same targets into real measurement runs.

#![deny(unsafe_code)]

use analysis::RunOptions;
use std::time::{Duration, Instant};

/// Bench-sized options: single rep, fixed seed.
pub fn bench_opts() -> RunOptions {
    RunOptions { reps: 1, seed: 424242, ..RunOptions::default() }
}

/// Units for throughput reporting, as in criterion.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Times one invocation of the routine body. The routine closure passed
/// to [`Criterion::bench_function`] receives `&mut Bencher` and calls
/// [`Bencher::iter`] exactly as with criterion.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        let out = f();
        self.elapsed = start.elapsed();
        std::hint::black_box(&out);
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Requested samples per benchmark (scaled down in quick mode).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(name.as_ref(), self.sample_size, None, routine);
        self
    }

    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.as_ref().to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    prefix: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.as_ref());
        run_bench(&name, self.sample_size, self.throughput, routine);
        self
    }

    pub fn finish(self) {}
}

/// Samples actually taken for a requested sample size: full under the
/// `criterion-bench` feature, a tenth (minimum 2) on the quick default.
fn effective_samples(requested: usize) -> usize {
    if cfg!(feature = "criterion-bench") {
        requested.max(2)
    } else {
        (requested / 10).max(2)
    }
}

fn run_bench(
    name: &str,
    requested: usize,
    throughput: Option<Throughput>,
    mut routine: impl FnMut(&mut Bencher),
) {
    let samples = effective_samples(requested);
    // Warmup: quick mode takes one untimed pass, full mode three.
    let warmup = if cfg!(feature = "criterion-bench") { 3 } else { 1 };
    for _ in 0..warmup {
        routine(&mut Bencher { elapsed: Duration::ZERO });
    }
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { elapsed: Duration::ZERO };
        routine(&mut b);
        times.push(b.elapsed);
    }
    times.sort();
    let min = times[0];
    let max = times.last().copied().unwrap_or(min);
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let rate = throughput.map(|t| {
        let secs = mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  {} elem/s", fmt_count(n as f64 / secs)),
            Throughput::Bytes(n) => format!("  {}B/s", fmt_count(n as f64 / secs)),
        }
    });
    eprintln!(
        "bench {name:<48} [{} {} {}]  ({samples} samples){}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        rate.unwrap_or_default(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} k", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Drop-in for `criterion::criterion_group!`: defines a function running
/// every target against the configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Drop-in for `criterion::criterion_main!`: a `main` that runs groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(10);
        let mut calls = 0u32;
        c.bench_function("shim_smoke", |b| {
            calls += 1;
            b.iter(|| std::hint::black_box(7u64 * 6));
        });
        // warmup + effective samples, each invoking the routine once.
        assert!(calls >= 3, "routine ran only {calls} times");
    }

    #[test]
    fn groups_scale_sample_size_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_group");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1000));
        let mut calls = 0u32;
        group.bench_function("inner", |b| {
            calls += 1;
            b.iter(|| std::hint::black_box(1 + 1));
        });
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn quick_mode_divides_samples() {
        if cfg!(feature = "criterion-bench") {
            assert_eq!(effective_samples(100), 100);
        } else {
            assert_eq!(effective_samples(100), 10);
            assert_eq!(effective_samples(10), 2);
        }
    }
}
