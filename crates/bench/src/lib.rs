//! # bench — criterion harnesses for every table and figure
//!
//! Each table/figure of the paper has a bench target that exercises its
//! full regeneration path at reduced replication (see `benches/`), plus
//! ablation benches for the design choices DESIGN.md calls out
//! (synchronized vs unsynchronized SMI phases, side effects on/off, SMT
//! contention) and microbenchmarks of the freeze algebra and detector.
//!
//! Helpers shared by the bench targets live here.

use analysis::RunOptions;

/// Bench-sized options: single rep, fixed seed.
pub fn bench_opts() -> RunOptions {
    RunOptions { reps: 1, seed: 424242, jitter: 0.004 }
}
