//! # bench — hermetic harnesses for every table and figure
//!
//! Each table/figure of the paper has a bench target that exercises its
//! full regeneration path at reduced replication (see `benches/`), plus
//! ablation benches for the design choices DESIGN.md calls out
//! (synchronized vs unsynchronized SMI phases, side effects on/off, SMT
//! contention) and microbenchmarks of the freeze algebra and detector.
//!
//! The bench targets are written against a small criterion-compatible
//! API ([`Criterion`], [`Bencher`], [`criterion_group!`],
//! [`criterion_main!`]) implemented here on plain `std::time::Instant` —
//! no external crates. By default every target takes a quick pass
//! (sample counts divided by ten); building with
//! `--features criterion-bench` restores full sample counts and adds
//! warmup, turning the same targets into real measurement runs.
//!
//! Every sample is kept and summarized as min/median/p95 ([`Summary`]) —
//! dispersion, not just a point estimate, following the measurement
//! methodology literature (see DESIGN.md §10). The [`suite`] module
//! packages the engine hot-path microbenchmarks behind a programmatic
//! API so `smi-lab bench` can run them with fixed sample counts and
//! write `BENCH_engine.json`.

#![deny(unsafe_code)]

pub mod suite;

use analysis::RunOptions;
use std::time::{Duration, Instant};

/// Bench-sized options: single rep, fixed seed.
pub fn bench_opts() -> RunOptions {
    RunOptions { reps: 1, seed: 424242, ..RunOptions::default() }
}

/// Units for throughput reporting, as in criterion.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Times one invocation of the routine body. The routine closure passed
/// to [`Criterion::bench_function`] receives `&mut Bencher` and calls
/// [`Bencher::iter`] exactly as with criterion.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        let out = f();
        self.elapsed = start.elapsed();
        std::hint::black_box(&out);
    }
}

/// Typed reasons a [`Summary`] statistic cannot be honestly computed.
/// The infallible accessors ([`Summary::quantile_ns`] etc.) paper over
/// these with documented clamps; [`Summary::try_quantile_ns`] surfaces
/// them so callers that *report* a statistic can refuse to fabricate
/// one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SummaryError {
    /// No samples were recorded at all.
    Empty,
    /// The requested quantile is outside `[0, 1]`.
    QuantileOutOfRange(f64),
    /// Too few samples to resolve the interior quantile `q`: the
    /// nearest-rank estimate degenerates to the maximum sample (a
    /// one-sample "median", a ten-sample "p95"). `needed` is the
    /// smallest sample count at which the rank separates from the
    /// extreme.
    Underresolved {
        /// The quantile asked for.
        q: f64,
        /// Samples available.
        n: usize,
        /// Samples the quantile would need to be distinguishable from
        /// the maximum.
        needed: usize,
    },
}

impl std::fmt::Display for SummaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SummaryError::Empty => write!(f, "no samples recorded"),
            SummaryError::QuantileOutOfRange(q) => write!(f, "quantile {q} outside [0, 1]"),
            SummaryError::Underresolved { q, n, needed } => write!(
                f,
                "quantile {q} unresolved at {n} sample(s): nearest-rank needs {needed} \
                 to separate from the maximum"
            ),
        }
    }
}

impl std::error::Error for SummaryError {}

/// Per-benchmark sample statistics: every sample is kept (sorted
/// ascending, in nanoseconds) so dispersion survives into reports.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Benchmark name (group-prefixed where applicable).
    pub name: String,
    /// All measured samples in nanoseconds, sorted ascending.
    pub samples_ns: Vec<u64>,
}

impl Summary {
    /// Nearest-rank quantile over the sorted samples; `q` in `[0, 1]`.
    ///
    /// Infallible with documented clamps: an empty summary returns `0`,
    /// `q` is clamped into `[0, 1]`, and interior quantiles on samples
    /// too small to resolve them degrade to the maximum sample (a
    /// one-sample "p95" is that sample). Use [`try_quantile_ns`] when
    /// fabricating a degenerate estimate would be misleading.
    ///
    /// [`try_quantile_ns`]: Summary::try_quantile_ns
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        let n = self.samples_ns.len();
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        self.samples_ns[rank - 1]
    }

    /// Strict nearest-rank quantile: errors instead of clamping. An
    /// interior quantile (`0 < q < 1`) whose nearest rank lands on the
    /// last sample is [`SummaryError::Underresolved`] — e.g. a median
    /// needs 2 samples, a p95 needs 20 before it means anything beyond
    /// "the maximum".
    pub fn try_quantile_ns(&self, q: f64) -> Result<u64, SummaryError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SummaryError::QuantileOutOfRange(q));
        }
        let n = self.samples_ns.len();
        if n == 0 {
            return Err(SummaryError::Empty);
        }
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        if q > 0.0 && q < 1.0 && rank == n {
            // Smallest n with ceil(q*n) <= n-1, i.e. n >= 1/(1-q).
            let needed = (1.0 / (1.0 - q)).ceil() as usize;
            return Err(SummaryError::Underresolved { q, n, needed });
        }
        Ok(self.samples_ns[rank - 1])
    }

    /// Fastest sample.
    pub fn min_ns(&self) -> u64 {
        self.samples_ns.first().copied().unwrap_or(0)
    }

    /// Median (nearest-rank p50). Clamped like [`Summary::quantile_ns`]:
    /// a one-sample summary reports that sample.
    pub fn median_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile (nearest-rank). Clamped like
    /// [`Summary::quantile_ns`]: below 20 samples this is the maximum
    /// sample — smoke runs report honest-but-degenerate tails.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// Slowest sample.
    pub fn max_ns(&self) -> u64 {
        self.samples_ns.last().copied().unwrap_or(0)
    }

    /// Arithmetic mean.
    pub fn mean_ns(&self) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        let total: u128 = self.samples_ns.iter().map(|&n| n as u128).sum();
        (total / self.samples_ns.len() as u128) as u64
    }
}

/// Measure `routine` for exactly `samples` timed invocations (plus a
/// warmup bounded by the sample count) and return every sample. This is
/// the primitive both [`Criterion::bench_function`] and the
/// [`suite`] runner sit on.
pub fn measure(name: &str, samples: usize, mut routine: impl FnMut(&mut Bencher)) -> Summary {
    let samples = samples.max(1);
    // Warmup: quick mode takes one untimed pass, full mode three — but
    // never more passes than the requested sample count, so tiny smoke
    // runs stay tiny.
    let warmup = if cfg!(feature = "criterion-bench") { 3 } else { 1 }.min(samples);
    for _ in 0..warmup {
        routine(&mut Bencher { elapsed: Duration::ZERO });
    }
    let mut samples_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { elapsed: Duration::ZERO };
        routine(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as u64);
    }
    samples_ns.sort_unstable();
    Summary { name: name.to_string(), samples_ns }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Requested samples per benchmark (scaled down in quick mode).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(name.as_ref(), self.sample_size, None, routine);
        self
    }

    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.as_ref().to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    prefix: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.as_ref());
        run_bench(&name, self.sample_size, self.throughput, routine);
        self
    }

    pub fn finish(self) {}
}

/// Samples actually taken for a requested sample size: full under the
/// `criterion-bench` feature, a tenth (minimum 2) on the quick default.
fn effective_samples(requested: usize) -> usize {
    if cfg!(feature = "criterion-bench") {
        requested.max(2)
    } else {
        (requested / 10).max(2)
    }
}

fn run_bench(
    name: &str,
    requested: usize,
    throughput: Option<Throughput>,
    routine: impl FnMut(&mut Bencher),
) -> Summary {
    let summary = measure(name, effective_samples(requested), routine);
    let rate = throughput.map(|t| {
        let secs = (summary.mean_ns() as f64 / 1e9).max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  {} elem/s", fmt_count(n as f64 / secs)),
            Throughput::Bytes(n) => format!("  {}B/s", fmt_count(n as f64 / secs)),
        }
    });
    eprintln!(
        "bench {name:<48} [min {} p50 {} p95 {}]  ({} samples){}",
        fmt_ns(summary.min_ns()),
        fmt_ns(summary.median_ns()),
        fmt_ns(summary.p95_ns()),
        summary.samples_ns.len(),
        rate.unwrap_or_default(),
    );
    summary
}

/// Format a nanosecond count with a readable unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} k", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Drop-in for `criterion::criterion_group!`: defines a function running
/// every target against the configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Drop-in for `criterion::criterion_main!`: a `main` that runs groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(10);
        let mut calls = 0u32;
        c.bench_function("shim_smoke", |b| {
            calls += 1;
            b.iter(|| std::hint::black_box(7u64 * 6));
        });
        // warmup + effective samples, each invoking the routine once.
        assert!(calls >= 3, "routine ran only {calls} times");
    }

    #[test]
    fn groups_scale_sample_size_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_group");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1000));
        let mut calls = 0u32;
        group.bench_function("inner", |b| {
            calls += 1;
            b.iter(|| std::hint::black_box(1 + 1));
        });
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn quick_mode_divides_samples() {
        if cfg!(feature = "criterion-bench") {
            assert_eq!(effective_samples(100), 100);
        } else {
            assert_eq!(effective_samples(100), 10);
            assert_eq!(effective_samples(10), 2);
        }
    }

    #[test]
    fn measure_keeps_every_sample_and_bounds_warmup() {
        let mut calls = 0u32;
        let s = measure("count", 5, |b| {
            calls += 1;
            b.iter(|| std::hint::black_box(3u64 + 4));
        });
        assert_eq!(s.samples_ns.len(), 5, "one recorded sample per timed pass");
        // Warmup is bounded by the sample count: at most 3 extra passes.
        assert!((6..=8).contains(&calls), "calls = {calls}");
        // Sorted ascending, so the quantile walk is well-defined.
        assert!(s.samples_ns.windows(2).all(|w| w[0] <= w[1]));

        // A 2-sample smoke run must not pay a bigger warmup than itself.
        let mut tiny_calls = 0u32;
        let _ = measure("tiny", 2, |b| {
            tiny_calls += 1;
            b.iter(|| std::hint::black_box(1u64));
        });
        assert!(tiny_calls <= 5, "tiny run took {tiny_calls} passes");
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let s = Summary { name: "q".into(), samples_ns: vec![10, 20, 30, 40, 100] };
        assert_eq!(s.min_ns(), 10);
        assert_eq!(s.median_ns(), 30);
        assert_eq!(s.p95_ns(), 100);
        assert_eq!(s.max_ns(), 100);
        assert_eq!(s.mean_ns(), 40);
        let empty = Summary { name: "e".into(), samples_ns: vec![] };
        assert_eq!(empty.median_ns(), 0);
        assert_eq!(empty.mean_ns(), 0);
    }

    #[test]
    fn strict_quantiles_reject_degenerate_samples() {
        let empty = Summary { name: "e".into(), samples_ns: vec![] };
        assert_eq!(empty.try_quantile_ns(0.5), Err(SummaryError::Empty));
        assert_eq!(empty.try_quantile_ns(1.5), Err(SummaryError::QuantileOutOfRange(1.5)));

        // One sample: min and max are exact, every interior quantile is
        // a fabrication the strict API refuses.
        let one = Summary { name: "one".into(), samples_ns: vec![42] };
        assert_eq!(one.try_quantile_ns(0.0), Ok(42));
        assert_eq!(one.try_quantile_ns(1.0), Ok(42));
        assert_eq!(
            one.try_quantile_ns(0.5),
            Err(SummaryError::Underresolved { q: 0.5, n: 1, needed: 2 })
        );
        assert_eq!(
            one.try_quantile_ns(0.95),
            Err(SummaryError::Underresolved { q: 0.95, n: 1, needed: 20 })
        );
        // ... while the infallible accessors clamp, documented.
        assert_eq!(one.median_ns(), 42);
        assert_eq!(one.p95_ns(), 42);
        assert_eq!(one.quantile_ns(7.0), 42, "q clamps into [0,1]");

        // p95 resolves at exactly 20 samples, not 19.
        let nineteen = Summary { name: "s19".into(), samples_ns: (1..=19).collect() };
        assert_eq!(
            nineteen.try_quantile_ns(0.95),
            Err(SummaryError::Underresolved { q: 0.95, n: 19, needed: 20 })
        );
        let twenty = Summary { name: "s20".into(), samples_ns: (1..=20).collect() };
        assert_eq!(twenty.try_quantile_ns(0.95), Ok(19));
        assert_eq!(twenty.try_quantile_ns(0.5), Ok(10));

        // The error renders a usable message.
        let msg = one.try_quantile_ns(0.95).unwrap_err().to_string();
        assert!(msg.contains("needs 20"), "{msg}");
    }

    #[test]
    fn constant_work_yields_p95_near_median() {
        // A fixed busy-work closure: every sample does identical work, so
        // the spread between p95 and median is scheduler noise only. The
        // bound is deliberately loose (2x) to stay robust on loaded CI
        // machines while still catching a harness that fabricates
        // dispersion (the old `iter` discarded it entirely).
        let s = measure("constant_work", 15, |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..2_000_000u64 {
                    acc = acc.wrapping_add(i ^ (acc >> 3));
                }
                std::hint::black_box(acc)
            })
        });
        let median = s.median_ns().max(1);
        let p95 = s.p95_ns();
        assert!(p95 >= median, "p95 {p95} below median {median}");
        assert!(
            p95 < median.saturating_mul(2),
            "constant work spread too wide: median {median} p95 {p95}"
        );
    }
}
