//! Ablation benches for the design choices DESIGN.md calls out. Each
//! compares a mechanism ON vs OFF on the same workload, so the bench
//! report doubles as a sensitivity study:
//!
//! * synchronized vs unsynchronized per-node SMI phases (the
//!   amplification mechanism);
//! * SMI side effects (rendezvous/refill/herd) on vs off;
//! * SMT cache-contention coefficient zero vs calibrated.

use bench::{criterion_group, criterion_main, Criterion};
use machine::{
    pair_rates, ExecProfile, NodeSpec, Phase, SchedParams, SmiSideEffects, SmtParams,
    ThreadProgram, ThreadSpec, Topology,
};
use mpi_sim::{ClusterSpec, NetworkParams, NodeState, Op, RankProgram};
use sim_core::{DurationModel, SimDuration, SimRng};
use smi_driver::{SmiClass, SmiDriver, SmiDriverConfig};
use std::hint::black_box;

fn barrier_workload(n: u32) -> Vec<RankProgram> {
    (0..n)
        .map(|_| {
            let mut ops = Vec::new();
            for _ in 0..100 {
                ops.push(Op::Compute(SimDuration::from_millis(50)));
                ops.push(Op::Barrier);
            }
            RankProgram::new(ops)
        })
        .collect()
}

fn run_phases(synchronized: bool) -> f64 {
    let n = 8u32;
    let spec = ClusterSpec::wyeast(n, 1, false).expect("valid shape");
    let driver = SmiDriver::new(SmiDriverConfig::mpi_study(SmiClass::Long));
    let mut rng = SimRng::new(5);
    let nodes: Vec<NodeState> = if synchronized {
        driver
            .synchronized_schedules(n as usize, &mut rng)
            .into_iter()
            .map(|schedule| NodeState::uniform(schedule, SmiSideEffects::none(), 4))
            .collect()
    } else {
        (0..n)
            .map(|_| NodeState {
                schedule: driver.schedule_for_node(&mut rng),
                effects: SmiSideEffects::none(),
                online_cpus: 4,
                per_core: Vec::new(),
            })
            .collect()
    };
    mpi_sim::run(&spec, &nodes, &barrier_workload(n), &NetworkParams::gigabit_cluster())
        .expect("valid job")
        .seconds()
}

fn ablation_phase_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_smi_phase_alignment");
    group.sample_size(10);
    group.bench_function("unsynchronized", |b| b.iter(|| black_box(run_phases(false))));
    group.bench_function("synchronized", |b| b.iter(|| black_box(run_phases(true))));
    group.finish();
}

fn run_side_effects(enabled: bool) -> f64 {
    let driver = SmiDriver::new(SmiDriverConfig::interval_ms(SmiClass::Long, 200));
    let mut rng = SimRng::new(6);
    let schedule = driver.schedule_for_node(&mut rng);
    let effects = if enabled { driver.side_effects(true) } else { SmiSideEffects::none() };
    let ex = machine::NodeExecutor::new(&schedule, effects, 8, 0.8, 0.5);
    ex.execute(sim_core::SimTime::ZERO, SimDuration::from_secs(30)).wall.as_secs_f64()
}

fn ablation_side_effects(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_smi_side_effects");
    group.bench_function("with_rendezvous_refill_herd", |b| {
        b.iter(|| black_box(run_side_effects(true)))
    });
    group.bench_function("pure_freeze_only", |b| b.iter(|| black_box(run_side_effects(false))));
    group.finish();
}

fn run_contention(contention: f64) -> f64 {
    let mut topo = Topology::new(NodeSpec::dell_r410());
    topo.set_online_count(8);
    let params = SchedParams { smt: SmtParams { contention }, ..SchedParams::default() };
    let threads: Vec<ThreadSpec> = (0..8)
        .map(|_| {
            ThreadSpec::new(ThreadProgram::new().then(Phase::Compute {
                work: SimDuration::from_millis(200),
                profile: ExecProfile::memory_bound(),
            }))
        })
        .collect();
    machine::run(&topo, &params, &threads).expect("no deadlock").makespan.as_secs_f64()
}

fn ablation_smt_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_smt_contention");
    for contention in [0.0, 1.0, 2.0] {
        group.bench_function(format!("contention_{contention}"), |b| {
            b.iter(|| black_box(run_contention(contention)))
        });
    }
    // The model itself, for the record: rates of a memory-bound pair.
    let p = ExecProfile::memory_bound();
    for contention in [0.0, 1.0, 2.0] {
        let (r, _) = pair_rates(&p, &p, &SmtParams { contention });
        eprintln!("memory-bound pair rate at contention {contention}: {r:.3}");
    }
    group.finish();
}

fn run_duration_model(fixed: bool) -> f64 {
    let durations = if fixed {
        DurationModel::Fixed(SimDuration::from_millis(105))
    } else {
        DurationModel::long_smi()
    };
    let schedule = sim_core::FreezeSchedule::periodic(sim_core::PeriodicFreeze {
        first_trigger: sim_core::SimTime::from_millis(100),
        period: SimDuration::from_secs(1),
        durations,
        policy: sim_core::TriggerPolicy::SkipWhileFrozen,
        seed: 4,
    });
    schedule
        .frozen_between(sim_core::SimTime::ZERO, sim_core::SimTime::from_secs(300))
        .as_secs_f64()
}

fn ablation_duration_band(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_duration_band");
    group.bench_function("uniform_100_110ms", |b| b.iter(|| black_box(run_duration_model(false))));
    group.bench_function("fixed_105ms", |b| b.iter(|| black_box(run_duration_model(true))));
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_phase_alignment, ablation_side_effects, ablation_smt_contention, ablation_duration_band
}
criterion_main!(ablations);
