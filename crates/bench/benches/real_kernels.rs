//! Benchmarks of the *real* computational kernels — the actual
//! EP deviate generation, BT block-tridiagonal solves, 3-D FFTs and
//! threaded convolution that anchor the workload models. These measure
//! genuine host performance (and incidentally let you estimate what a
//! class-A run would take on this machine).

use apps::{convolve_blocked, convolve_serial, Image, Kernel};
use bench::{criterion_group, criterion_main, Criterion, Throughput};
use nas::bt::{solve, BlockTriSystem, Mat5};
use nas::ep::ep_chunk;
use nas::ft::{Complex, Field3};
use sim_core::SimRng;
use std::hint::black_box;

fn ep_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("real_ep");
    let pairs = 1u64 << 16;
    group.throughput(Throughput::Elements(pairs));
    group.bench_function("gaussian_pairs_64k", |b| b.iter(|| black_box(ep_chunk(0, pairs).gc())));
    group.finish();
}

fn bt_kernel(c: &mut Criterion) {
    let mut rng = SimRng::new(1);
    let n = 162; // one class-C grid line
    let mut mk = |scale: f64| -> Mat5 {
        let mut m = [[0.0; 5]; 5];
        for row in &mut m {
            for v in row.iter_mut() {
                *v = rng.uniform_range(-scale, scale);
            }
        }
        m
    };
    let mut a = Vec::new();
    let mut bdiag = Vec::new();
    let mut cup = Vec::new();
    let mut r = Vec::new();
    for i in 0..n {
        a.push(if i > 0 { mk(0.1) } else { [[0.0; 5]; 5] });
        let mut d = mk(0.2);
        for (k, row) in d.iter_mut().enumerate() {
            row[k] += 4.0;
        }
        bdiag.push(d);
        cup.push(if i + 1 < n { mk(0.1) } else { [[0.0; 5]; 5] });
        r.push([1.0, 0.5, -0.5, 2.0, -1.0]);
    }
    let sys = BlockTriSystem { a, b: bdiag, c: cup, r };
    let mut group = c.benchmark_group("real_bt");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("block_tridiag_line_162", |b| b.iter(|| black_box(solve(&sys))));
    group.finish();
}

fn ft_kernel(c: &mut Criterion) {
    let mut rng = SimRng::new(2);
    let mut field = Field3::zeros((64, 32, 32));
    for v in &mut field.data {
        *v = Complex::new(rng.uniform_range(-1.0, 1.0), rng.uniform_range(-1.0, 1.0));
    }
    let mut group = c.benchmark_group("real_ft");
    group.throughput(Throughput::Elements(field.len() as u64));
    group.bench_function("fft3_64x32x32", |b| {
        b.iter(|| {
            let mut f = field.clone();
            f.fft3(false);
            black_box(f.checksum())
        })
    });
    group.finish();
}

fn convolve_kernel(c: &mut Criterion) {
    let mut rng = SimRng::new(3);
    let img = Image::from_fn(192, 192, |_, _| rng.range_u64(0, 255) as i64);
    let ker = Kernel::gaussian(5);
    let mut group = c.benchmark_group("real_convolve");
    group.throughput(Throughput::Elements((img.rows * img.cols) as u64));
    group
        .bench_function("serial_192x192_g5", |b| b.iter(|| black_box(convolve_serial(&img, &ker))));
    group.bench_function("blocked_24threads_192x192_g5", |b| {
        b.iter(|| black_box(convolve_blocked(&img, &ker, 48, 24)))
    });
    group.finish();
}

criterion_group! {
    name = real_kernels;
    config = Criterion::default().sample_size(20);
    targets = ep_kernel, bt_kernel, ft_kernel, convolve_kernel
}
criterion_main!(real_kernels);
