//! Bench targets for Figure 1 (Convolve) and Figure 2 (UnixBench): each
//! runs one representative point of the sweep through the full pipeline.

use apps::{run_convolve, run_suite, ConvolveConfig, ConvolveRun, UbCosts};
use bench::{criterion_group, criterion_main, Criterion};
use sim_core::SimRng;
use smi_driver::{SmiClass, SmiDriver, SmiDriverConfig};
use std::hint::black_box;

fn figure1_convolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1_convolve");
    for (config, cpus, interval) in [
        (ConvolveConfig::CacheUnfriendly, 4u32, 50u64),
        (ConvolveConfig::CacheUnfriendly, 8, 600),
        (ConvolveConfig::CacheFriendly, 8, 50),
    ] {
        let label = format!("{}_{}cpu_{}ms", config.label(), cpus, interval);
        group.bench_function(&label, |b| {
            b.iter(|| {
                let driver = SmiDriver::new(SmiDriverConfig::interval_ms(SmiClass::Long, interval));
                let mut rng = SimRng::new(1);
                let run = ConvolveRun {
                    config,
                    online_cpus: cpus,
                    schedule: driver.schedule_for_node(&mut rng),
                    effects: driver.side_effects(cpus > 4),
                    threads: 24,
                };
                black_box(run_convolve(&run, &mut rng).wall_seconds)
            })
        });
    }
    group.finish();
}

fn figure2_unixbench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_unixbench");
    group.sample_size(10);
    for (cpus, interval) in [(4u32, 100u64), (8, 1600)] {
        let label = format!("{cpus}cpu_{interval}ms");
        group.bench_function(&label, |b| {
            b.iter(|| {
                let driver = SmiDriver::new(SmiDriverConfig::interval_ms(SmiClass::Long, interval));
                let mut rng = SimRng::new(2);
                let schedule = driver.schedule_for_node(&mut rng);
                let effects = driver.side_effects(cpus > 4);
                black_box(run_suite(cpus, &schedule, &effects, &UbCosts::default()).total_index)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = figure1_convolve, figure2_unixbench
}
criterion_main!(figures);
