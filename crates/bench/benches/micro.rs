//! Microbenchmarks of the simulation substrate itself: the freeze
//! algebra, the detector's polling loop, the cluster engine's event
//! throughput, and the cache simulator.

use bench::{criterion_group, criterion_main, Criterion};
use sim_core::{
    DurationModel, FreezeSchedule, PeriodicFreeze, SimDuration, SimRng, SimTime, TriggerPolicy,
};
use smi_driver::{HwlatDetector, Tsc};
use std::hint::black_box;

fn long_schedule(seed: u64) -> FreezeSchedule {
    FreezeSchedule::periodic(PeriodicFreeze {
        first_trigger: SimTime::from_millis(137),
        period: SimDuration::from_secs(1),
        durations: DurationModel::long_smi(),
        policy: TriggerPolicy::SkipWhileFrozen,
        seed,
    })
}

fn freeze_advance(c: &mut Criterion) {
    c.bench_function("freeze_advance_1000_segments", |b| {
        b.iter(|| {
            let s = long_schedule(1);
            let mut t = SimTime::ZERO;
            for _ in 0..1000 {
                t = s.advance(t, SimDuration::from_millis(37));
            }
            black_box(t)
        })
    });
    c.bench_function("freeze_frozen_between_1h", |b| {
        let s = long_schedule(2);
        // Pre-generate once so the bench measures queries, not generation.
        let _ = s.frozen_between(SimTime::ZERO, SimTime::from_secs(3600));
        b.iter(|| black_box(s.frozen_between(SimTime::ZERO, SimTime::from_secs(3600))))
    });
}

fn event_queue(c: &mut Criterion) {
    // The same fixed workloads `smi-lab bench` records in
    // BENCH_engine.json, so a criterion-shim run and the JSON trajectory
    // are directly comparable.
    c.bench_function("event_queue_near_monotone", |b| {
        b.iter(|| black_box(bench::suite::event_queue_near_monotone()))
    });
    c.bench_function("event_queue_same_time_bursts", |b| {
        b.iter(|| black_box(bench::suite::event_queue_same_time_bursts()))
    });
}

fn freeze_lookup(c: &mut Criterion) {
    c.bench_function("freeze_unfreeze_scan_50k", |b| {
        let s = long_schedule(5);
        // Warm the window cache so the bench measures lookups.
        let _ = s.unfreeze(SimTime::from_secs(700));
        b.iter(|| black_box(bench::suite::freeze_unfreeze_scan(&s)))
    });
}

fn detector_polling(c: &mut Criterion) {
    c.bench_function("hwlat_detect_1s_window", |b| {
        let s = long_schedule(3);
        let det = HwlatDetector::default();
        b.iter(|| {
            black_box(det.detect(&s, SimTime::ZERO, SimTime::from_secs(1), &Tsc::e5620()).count())
        })
    });
}

fn engine_throughput(c: &mut Criterion) {
    use mpi_sim::{ClusterSpec, NetworkParams, Op, RankProgram};
    c.bench_function("engine_16rank_alltoall_x20", |b| {
        let spec = ClusterSpec::wyeast(16, 1, false).expect("valid shape");
        let progs: Vec<RankProgram> = (0..16)
            .map(|_| {
                RankProgram::new(
                    (0..20)
                        .flat_map(|_| {
                            [
                                Op::Compute(SimDuration::from_millis(10)),
                                Op::Alltoall { bytes_per_pair: 4096 },
                            ]
                        })
                        .collect(),
                )
            })
            .collect();
        let nodes = nas::quiet_nodes(&spec);
        let net = NetworkParams::gigabit_cluster();
        b.iter(|| {
            black_box(mpi_sim::run(&spec, &nodes, &progs, &net).expect("valid job").seconds())
        })
    });
}

fn cache_hierarchy(c: &mut Criterion) {
    use cache_sim::{Hierarchy, HierarchyConfig};
    c.bench_function("cache_sim_1m_accesses", |b| {
        let mut rng = SimRng::new(4);
        let addrs: Vec<u64> = (0..1_000_000).map(|_| rng.below(1 << 26)).collect();
        b.iter(|| {
            let mut h = Hierarchy::new(HierarchyConfig::xeon_e5620());
            black_box(h.run(addrs.iter().copied()))
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = freeze_advance, event_queue, freeze_lookup, detector_polling, engine_throughput,
        cache_hierarchy
}
criterion_main!(micro);
