//! One bench target per paper table. Each benchmark runs the table's
//! regeneration path on a representative cell (calibration + the three
//! SMM classes), so `cargo bench` exercises exactly the code that
//! produces Tables 1–5. The full tables are printed by
//! `smi-lab table1..table5`.

use bench::bench_opts;
use bench::{criterion_group, criterion_main, Criterion};
use mpi_sim::{ClusterSpec, NetworkParams};
use nas::{calibrate_extra, table_cell, Bench, Class};
use std::hint::black_box;

fn cell_roundtrip(bench: Bench, class: Class, nodes: u32, rpn: u32, htt: bool) -> f64 {
    let network = NetworkParams::gigabit_cluster();
    let spec = ClusterSpec::wyeast(nodes, rpn, htt).expect("valid shape");
    let target =
        table_cell(bench, class, nodes, rpn).and_then(|c| c.baseline()).expect("paper cell");
    let extra = calibrate_extra(bench, class, &spec, &network, target).expect("calibrates");
    let opts = bench_opts();
    let mut total = 0.0;
    for smm in analysis::SMM_CLASSES {
        total += analysis::measure_cell(bench, class, &spec, extra, smm, &opts, &network, "bench")
            .expect("measures")
            .mean;
    }
    total
}

fn table1_bt(c: &mut Criterion) {
    c.bench_function("table1_bt_cell_A_4n", |b| {
        b.iter(|| black_box(cell_roundtrip(Bench::Bt, Class::A, 4, 1, false)))
    });
}

fn table2_ep(c: &mut Criterion) {
    c.bench_function("table2_ep_cell_A_16n", |b| {
        b.iter(|| black_box(cell_roundtrip(Bench::Ep, Class::A, 16, 1, false)))
    });
}

fn table3_ft(c: &mut Criterion) {
    c.bench_function("table3_ft_cell_A_8n", |b| {
        b.iter(|| black_box(cell_roundtrip(Bench::Ft, Class::A, 8, 1, false)))
    });
}

fn table4_ep_htt(c: &mut Criterion) {
    c.bench_function("table4_ep_htt_cell_A_4n", |b| {
        b.iter(|| {
            black_box(
                cell_roundtrip(Bench::Ep, Class::A, 4, 4, false)
                    + cell_roundtrip(Bench::Ep, Class::A, 4, 4, true),
            )
        })
    });
}

fn table5_ft_htt(c: &mut Criterion) {
    c.bench_function("table5_ft_htt_cell_A_4n", |b| {
        b.iter(|| {
            black_box(
                cell_roundtrip(Bench::Ft, Class::A, 4, 4, false)
                    + cell_roundtrip(Bench::Ft, Class::A, 4, 4, true),
            )
        })
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = table1_bt, table2_ep, table3_ft, table4_ep_htt, table5_ft_htt
}
criterion_main!(tables);
