//! Thread programs: what the node scheduler executes.
//!
//! A thread is a sequence of [`Phase`]s. Compute phases carry a *solo
//! duration* (how long the phase takes running alone on one physical
//! core) plus an [`ExecProfile`] so the SMT model can slow it down when a
//! sibling is co-resident. Pipe phases give the scheduler real blocking
//! behaviour — needed for the UnixBench pipe throughput and pipe-based
//! context-switching tests.

use crate::smt::ExecProfile;
use crate::topology::CpuId;
use sim_core::SimDuration;

/// Identifier of a pipe shared between threads of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, jsonio::ToJson)]
pub struct PipeId(pub u32);

/// One step of a thread program.
#[derive(Clone, Debug, PartialEq, jsonio::ToJson)]
pub enum Phase {
    /// Execute for `work` (solo time), with the given SMT profile.
    Compute {
        /// Solo duration of the phase.
        work: SimDuration,
        /// SMT/cache behaviour while computing.
        profile: ExecProfile,
    },
    /// Issue `count` system calls costing `each` apiece (kernel-side CPU
    /// work; scheduled like compute with a compute-bound profile).
    Syscalls {
        /// Number of system calls.
        count: u64,
        /// CPU cost per call.
        each: SimDuration,
    },
    /// Write `bytes` into a pipe, blocking while the buffer is full.
    PipeWrite {
        /// Target pipe.
        pipe: PipeId,
        /// Bytes to write.
        bytes: u64,
    },
    /// Read `bytes` from a pipe, blocking until they are available.
    PipeRead {
        /// Source pipe.
        pipe: PipeId,
        /// Bytes to read.
        bytes: u64,
    },
}

impl Phase {
    /// A compute phase with a compute-bound profile.
    pub fn compute(work: SimDuration) -> Phase {
        Phase::Compute { work, profile: ExecProfile::compute_bound() }
    }

    /// A compute phase with a memory-bound profile.
    pub fn memory(work: SimDuration) -> Phase {
        Phase::Compute { work, profile: ExecProfile::memory_bound() }
    }
}

/// A complete thread program.
#[derive(Clone, Debug, Default, PartialEq, jsonio::ToJson)]
pub struct ThreadProgram {
    /// Phases executed in order.
    pub phases: Vec<Phase>,
}

impl ThreadProgram {
    /// An empty program.
    pub fn new() -> Self {
        ThreadProgram { phases: Vec::new() }
    }

    /// Append a phase (builder style).
    pub fn then(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Total solo compute time (ignores blocking).
    pub fn solo_work(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for p in &self.phases {
            match p {
                Phase::Compute { work, .. } => total += *work,
                Phase::Syscalls { count, each } => total += *each * *count,
                _ => {}
            }
        }
        total
    }
}

/// A thread to run on the node.
#[derive(Clone, Debug, jsonio::ToJson)]
pub struct ThreadSpec {
    /// The program to execute.
    pub program: ThreadProgram,
    /// Work-time instant at which the thread becomes runnable (models
    /// spawn cost / staggered starts).
    pub start_delay: SimDuration,
    /// CPU affinity: pin the thread to one logical CPU (how MPI launchers
    /// bind ranks). `None` lets the scheduler balance freely.
    pub pinned: Option<CpuId>,
}

impl ThreadSpec {
    /// A thread runnable from time zero, unpinned.
    pub fn new(program: ThreadProgram) -> Self {
        ThreadSpec { program, start_delay: SimDuration::ZERO, pinned: None }
    }

    /// Delay the thread's start.
    pub fn delayed(mut self, d: SimDuration) -> Self {
        self.start_delay = d;
        self
    }

    /// Pin the thread to a logical CPU.
    pub fn pinned_to(mut self, cpu: CpuId) -> Self {
        self.pinned = Some(cpu);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_work_sums_compute_and_syscalls() {
        let p = ThreadProgram::new()
            .then(Phase::compute(SimDuration::from_millis(5)))
            .then(Phase::Syscalls { count: 1000, each: SimDuration::from_micros(1) })
            .then(Phase::PipeWrite { pipe: PipeId(0), bytes: 100 });
        assert_eq!(p.solo_work(), SimDuration::from_millis(6));
    }

    #[test]
    fn builder_preserves_order() {
        let p = ThreadProgram::new()
            .then(Phase::compute(SimDuration::from_millis(1)))
            .then(Phase::memory(SimDuration::from_millis(2)));
        assert_eq!(p.phases.len(), 2);
        assert!(
            matches!(p.phases[1], Phase::Compute { work, .. } if work == SimDuration::from_millis(2))
        );
    }

    #[test]
    fn delayed_thread_records_delay() {
        let t = ThreadSpec::new(ThreadProgram::new()).delayed(SimDuration::from_micros(30));
        assert_eq!(t.start_delay, SimDuration::from_micros(30));
    }
}
