//! Mapping node-local work to wall time under an SMI freeze schedule.
//!
//! Because an SMI is broadcast — every logical CPU of the node enters SMM
//! together — freezing commutes with scheduling, and a node-local run can
//! be simulated in work time and mapped through the schedule afterwards.
//! [`NodeExecutor`] performs that mapping and adds the two *second-order*
//! SMI costs the paper's HTT results point at:
//!
//! * **rendezvous overhead** — SMM entry waits for all logical CPUs to
//!   arrive and save state (microcode save/restore per hardware thread),
//!   so each window is slightly longer with more logical CPUs online;
//! * **cache refill** — the SMM handler's working set evicts host cache
//!   lines, so after every window the node re-executes some work it had
//!   effectively lost; the cost grows with online logical CPUs (more
//!   contexts refilling a shared hierarchy) and with the workload's
//!   memory intensity.
//!
//! Both are expressed as *extra work* per freeze window, and the total is
//! found by a short fixed-point iteration (more wall time ⇒ more windows
//! ⇒ more refill work ⇒ more wall time; the iteration converges because
//! per-window overhead is far below the trigger period).

use sim_core::{FreezeSchedule, SimDuration, SimError, SimTime};

/// Clamp an intensity knob into its documented `[0, 1]` domain, mapping
/// NaN to 0 (the validity layer reports out-of-domain values as typed
/// errors upstream; the arithmetic here just stays total).
fn clamp_intensity(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v.clamp(0.0, 1.0)
    }
}

/// Is `v` a finite fraction usable as an intensity or loss fraction?
fn valid_fraction(v: f64) -> bool {
    v.is_finite() && (0.0..=1.0).contains(&v)
}

/// Per-window SMI side-effect model.
///
/// The per-window cost has two fixed components (rendezvous, refill) and
/// two residency-proportional components that encode the paper's
/// HTT-under-SMI observations (Tables 4–5):
///
/// * `herd_frac` — with HTT enabled and the ranks saturating the physical
///   cores, SMM exit releases all logical CPUs at once; until the load
///   balancer settles, ranks can be co-scheduled on sibling threads and
///   lose a fraction of the residency's worth of work. Zero with HTT off
///   (there are no siblings to misplace onto).
/// * `backlog_frac` — after a long window the node faces a backlog of
///   deferred interrupt/softirq and MPI progress work proportional to the
///   residency and the workload's communication intensity. With HTT off
///   this work preempts the ranks; with HTT on, idle sibling threads
///   absorb it (set it to zero). This is the mechanism by which HTT can
///   *help* a communication-heavy benchmark under long SMIs.
#[derive(Clone, Copy, Debug, jsonio::ToJson)]
pub struct SmiSideEffects {
    /// SMM entry/exit rendezvous cost per online logical CPU, added to
    /// the *effective* residency of every window.
    pub rendezvous_per_cpu: SimDuration,
    /// Host work lost to cache refill after each window, per online
    /// logical CPU, at memory intensity 1.0. Scaled by the workload's
    /// memory intensity in `[0, 1]`.
    pub refill_per_cpu: SimDuration,
    /// Fraction of each window's residency lost to post-exit scheduler
    /// herding onto SMT siblings (HTT on, cores saturated).
    pub herd_frac: f64,
    /// Fraction of each window's residency, scaled by the workload's
    /// communication intensity, lost to deferred interrupt/progress
    /// backlog (HTT off).
    pub backlog_frac: f64,
    /// Upper bound on the residency-proportional losses, as a fraction of
    /// the node's *unfrozen* time (default [`RESIDENCY_LOSS_CAP`]). At
    /// extreme SMI frequencies the host never settles and recovery work
    /// saturates at this share of whatever host time remains; how bad the
    /// saturation is depends on what the balancer and softirq backlog do
    /// in each particular run, so experiment drivers may jitter it.
    pub loss_cap: f64,
}

impl Default for SmiSideEffects {
    fn default() -> Self {
        SmiSideEffects {
            rendezvous_per_cpu: SimDuration::from_micros(8),
            refill_per_cpu: SimDuration::from_micros(450),
            herd_frac: 0.0,
            backlog_frac: 0.0,
            loss_cap: RESIDENCY_LOSS_CAP,
        }
    }
}

impl SmiSideEffects {
    /// No second-order effects: windows freeze exactly their residency.
    pub fn none() -> Self {
        SmiSideEffects {
            rendezvous_per_cpu: SimDuration::ZERO,
            refill_per_cpu: SimDuration::ZERO,
            herd_frac: 0.0,
            backlog_frac: 0.0,
            loss_cap: RESIDENCY_LOSS_CAP,
        }
    }

    /// The fixed extra work per freeze window for a node with
    /// `online_cpus` logical CPUs running a workload of the given memory
    /// intensity (`0..=1`).
    pub fn per_window_cost(&self, online_cpus: u32, memory_intensity: f64) -> SimDuration {
        let rendezvous = self.rendezvous_per_cpu * online_cpus as u64;
        let refill =
            (self.refill_per_cpu * online_cpus as u64).mul_f64(clamp_intensity(memory_intensity));
        rendezvous + refill
    }

    /// The residency-proportional extra work, per unit of frozen time,
    /// for a workload of the given communication intensity (`0..=1`).
    pub fn per_frozen_fraction(&self, comm_intensity: f64) -> f64 {
        self.herd_frac.max(0.0) + self.backlog_frac.max(0.0) * clamp_intensity(comm_intensity)
    }

    /// Check every fraction is finite and within its documented domain.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, v) in [
            ("herd_frac", self.herd_frac),
            ("backlog_frac", self.backlog_frac),
            ("loss_cap", self.loss_cap),
        ] {
            if !valid_fraction(v) {
                return Err(SimError::invalid(
                    "SMI side effects",
                    format!("{name} = {v} is outside [0, 1]"),
                ));
            }
        }
        Ok(())
    }
}

/// Default upper bound on residency-proportional overhead as a fraction
/// of the node's *unfrozen* time. At extreme SMI frequencies the
/// scheduler-herd and backlog costs saturate — the host simply never
/// settles — rather than compounding without bound.
pub const RESIDENCY_LOSS_CAP: f64 = 0.08;

/// Wall-time outcome of running some work on a frozen node.
#[derive(Clone, Debug, jsonio::ToJson)]
pub struct ExecOutcome {
    /// Wall instant the work completed.
    pub wall_end: SimTime,
    /// Wall duration from start to completion.
    pub wall: SimDuration,
    /// Time spent frozen in SMM during the run.
    pub frozen: SimDuration,
    /// Number of SMM windows that began during the run.
    pub windows: usize,
    /// Extra work injected by rendezvous + refill.
    pub overhead_work: SimDuration,
}

/// Executes work quantities against a node's freeze schedule.
#[derive(Debug)]
pub struct NodeExecutor<'a> {
    schedule: &'a FreezeSchedule,
    effects: SmiSideEffects,
    online_cpus: u32,
    memory_intensity: f64,
    comm_intensity: f64,
}

impl<'a> NodeExecutor<'a> {
    /// Build an executor for a node. `memory_intensity` scales the cache
    /// refill cost; `comm_intensity` scales the post-window interrupt
    /// backlog cost.
    /// Out-of-domain knobs are clamped (0 CPUs becomes 1, intensities to
    /// `[0, 1]`) so the executor is total; [`NodeExecutor::try_new`] gives
    /// the typed rejection instead.
    pub fn new(
        schedule: &'a FreezeSchedule,
        effects: SmiSideEffects,
        online_cpus: u32,
        memory_intensity: f64,
        comm_intensity: f64,
    ) -> Self {
        NodeExecutor {
            schedule,
            effects,
            online_cpus: online_cpus.max(1),
            memory_intensity: clamp_intensity(memory_intensity),
            comm_intensity: clamp_intensity(comm_intensity),
        }
    }

    /// Like [`NodeExecutor::new`], but rejects malformed inputs with a
    /// typed error instead of clamping — the simulation engine's entry
    /// point into node execution.
    pub fn try_new(
        schedule: &'a FreezeSchedule,
        effects: SmiSideEffects,
        online_cpus: u32,
        memory_intensity: f64,
        comm_intensity: f64,
    ) -> Result<Self, SimError> {
        if online_cpus == 0 {
            return Err(SimError::invalid("node", "zero online CPUs"));
        }
        effects.validate()?;
        for (name, v) in
            [("memory intensity", memory_intensity), ("comm intensity", comm_intensity)]
        {
            if !valid_fraction(v) {
                return Err(SimError::invalid("node", format!("{name} {v} is outside [0, 1]")));
            }
        }
        if let Some(cfg) = schedule.config() {
            cfg.validate()?;
        }
        Ok(NodeExecutor { schedule, effects, online_cpus, memory_intensity, comm_intensity })
    }

    /// Map `work` starting at wall `start` to its wall completion,
    /// accounting for per-window and residency-proportional overhead via
    /// fixed-point iteration.
    pub fn execute(&self, start: SimTime, work: SimDuration) -> ExecOutcome {
        let per_window = self.effects.per_window_cost(self.online_cpus, self.memory_intensity);
        let frozen_frac = self.effects.per_frozen_fraction(self.comm_intensity);
        let mut total_work = work;
        let mut end = self.schedule.advance(start, total_work);
        for _ in 0..16 {
            let (windows, frozen) = self.schedule.span_stats(start, end);
            // Residency-proportional losses cannot exceed the host time
            // actually available: post-SMI recovery is bounded by
            // RESIDENCY_LOSS_CAP of the unfrozen time (which also keeps
            // the fixed point contractive at extreme duty cycles).
            let unfrozen = end.since(start).saturating_sub(frozen);
            let residency_loss =
                frozen.mul_f64(frozen_frac).min(unfrozen.mul_f64(self.effects.loss_cap));
            let with_overhead = work + per_window * windows as u64 + residency_loss;
            let new_end = self.schedule.advance(start, with_overhead);
            if new_end == end && with_overhead == total_work {
                break;
            }
            total_work = with_overhead;
            end = new_end;
        }
        let (windows, frozen) = self.schedule.span_stats(start, end);
        ExecOutcome {
            wall_end: end,
            wall: end.since(start),
            frozen,
            windows,
            overhead_work: total_work - work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{DurationModel, PeriodicFreeze, TriggerPolicy};

    fn long_1hz(seed: u64) -> FreezeSchedule {
        FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::from_millis(500),
            period: SimDuration::from_secs(1),
            durations: DurationModel::Fixed(SimDuration::from_millis(105)),
            policy: TriggerPolicy::SkipWhileFrozen,
            seed,
        })
    }

    #[test]
    fn no_noise_no_overhead() {
        let s = FreezeSchedule::none();
        let ex = NodeExecutor::new(&s, SmiSideEffects::default(), 8, 0.5, 0.5);
        let out = ex.execute(SimTime::ZERO, SimDuration::from_secs(10));
        assert_eq!(out.wall, SimDuration::from_secs(10));
        assert_eq!(out.frozen, SimDuration::ZERO);
        assert_eq!(out.windows, 0);
        assert_eq!(out.overhead_work, SimDuration::ZERO);
    }

    #[test]
    fn long_smi_inflates_by_roughly_duty_cycle() {
        let s = long_1hz(1);
        let ex = NodeExecutor::new(&s, SmiSideEffects::none(), 4, 0.0, 0.0);
        let out = ex.execute(SimTime::ZERO, SimDuration::from_secs(100));
        let inflation = out.wall.as_secs_f64() / 100.0;
        // 105ms per second of wall time => ~10.5% longer wall than work.
        assert!((1.10..1.13).contains(&inflation), "inflation {inflation}");
    }

    #[test]
    fn refill_overhead_grows_with_logical_cpus() {
        let s4 = long_1hz(2);
        let s8 = long_1hz(2);
        let fx = SmiSideEffects::default();
        let out4 = NodeExecutor::new(&s4, fx, 4, 1.0, 0.0)
            .execute(SimTime::ZERO, SimDuration::from_secs(30));
        let out8 = NodeExecutor::new(&s8, fx, 8, 1.0, 0.0)
            .execute(SimTime::ZERO, SimDuration::from_secs(30));
        assert!(out8.overhead_work > out4.overhead_work);
        assert!(out8.wall > out4.wall);
    }

    #[test]
    fn memory_intensity_scales_refill_only() {
        let s = long_1hz(3);
        let fx = SmiSideEffects {
            rendezvous_per_cpu: SimDuration::ZERO,
            refill_per_cpu: SimDuration::from_micros(500),
            ..SmiSideEffects::none()
        };
        let compute = NodeExecutor::new(&s, fx, 8, 0.0, 0.0)
            .execute(SimTime::ZERO, SimDuration::from_secs(20));
        let memory = NodeExecutor::new(&s, fx, 8, 1.0, 0.0)
            .execute(SimTime::ZERO, SimDuration::from_secs(20));
        assert_eq!(compute.overhead_work, SimDuration::ZERO);
        assert!(memory.overhead_work > SimDuration::ZERO);
    }

    #[test]
    fn herd_and_backlog_are_residency_proportional() {
        let htt_on =
            SmiSideEffects { herd_frac: 0.25, backlog_frac: 0.0, ..SmiSideEffects::none() };
        let htt_off =
            SmiSideEffects { herd_frac: 0.0, backlog_frac: 0.5, ..SmiSideEffects::none() };
        // Compute-bound workload (comm 0): HTT-on loses herd time, HTT-off
        // loses nothing.
        assert!((htt_on.per_frozen_fraction(0.0) - 0.25).abs() < 1e-12);
        assert_eq!(htt_off.per_frozen_fraction(0.0), 0.0);
        // Comm-heavy workload: HTT-off pays the backlog.
        assert!((htt_off.per_frozen_fraction(0.8) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn herd_cost_shows_up_in_wall_time() {
        let s = long_1hz(7);
        let herd = SmiSideEffects { herd_frac: 0.3, ..SmiSideEffects::none() };
        let base = NodeExecutor::new(&s, SmiSideEffects::none(), 8, 0.0, 0.0)
            .execute(SimTime::ZERO, SimDuration::from_secs(20));
        let herded = NodeExecutor::new(&s, herd, 8, 0.0, 0.0)
            .execute(SimTime::ZERO, SimDuration::from_secs(20));
        // ~0.3 x 105ms extra per window.
        let extra = herded.wall.as_secs_f64() - base.wall.as_secs_f64();
        let per_window = extra / herded.windows as f64;
        assert!((0.025..0.045).contains(&per_window), "per-window extra {per_window}");
    }

    #[test]
    fn fixed_point_converges_and_counts_windows() {
        let s = long_1hz(4);
        let ex = NodeExecutor::new(&s, SmiSideEffects::default(), 8, 1.0, 0.0);
        let out = ex.execute(SimTime::ZERO, SimDuration::from_secs(10));
        // ~10s of work with ~10.5% duty: 11 windows give or take one.
        assert!((10..=13).contains(&out.windows), "windows {}", out.windows);
        // Overhead equals windows x per-window cost (no residency terms).
        let per = SmiSideEffects::default().per_window_cost(8, 1.0);
        assert_eq!(out.overhead_work, per * out.windows as u64);
    }

    #[test]
    fn try_new_rejects_malformed_nodes_with_typed_errors() {
        use sim_core::SimError;
        let s = FreezeSchedule::none();
        let fx = SmiSideEffects::none();
        assert!(matches!(
            NodeExecutor::try_new(&s, fx, 0, 0.5, 0.5),
            Err(SimError::InvalidSpec { .. })
        ));
        assert!(matches!(
            NodeExecutor::try_new(&s, fx, 4, 1.5, 0.5),
            Err(SimError::InvalidSpec { .. })
        ));
        assert!(matches!(
            NodeExecutor::try_new(&s, fx, 4, 0.5, f64::NAN),
            Err(SimError::InvalidSpec { .. })
        ));
        let bad_fx = SmiSideEffects { herd_frac: -0.2, ..SmiSideEffects::none() };
        assert!(matches!(
            NodeExecutor::try_new(&s, bad_fx, 4, 0.5, 0.5),
            Err(SimError::InvalidSpec { .. })
        ));
        assert!(NodeExecutor::try_new(&s, fx, 4, 0.5, 0.5).is_ok());
        // `new` clamps the same inputs instead of faulting.
        let clamped = NodeExecutor::new(&s, fx, 0, 2.0, f64::NAN);
        let out = clamped.execute(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(out.wall, SimDuration::from_secs(1));
    }

    #[test]
    fn execute_is_consistent_with_schedule_algebra() {
        let s = long_1hz(5);
        let ex = NodeExecutor::new(&s, SmiSideEffects::none(), 4, 0.0, 0.0);
        let start = SimTime::from_millis(250);
        let work = SimDuration::from_secs(7);
        let out = ex.execute(start, work);
        assert_eq!(s.work_between(start, out.wall_end), work);
        assert_eq!(out.frozen + work, out.wall);
    }
}
