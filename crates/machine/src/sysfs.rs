//! A sysfs-like string interface over the topology.
//!
//! The paper varies logical CPU count through the Linux *sysfs* interface
//! ("we used the Linux sysfs interface to selectively offline specific
//! logical cores"), i.e. writes to
//! `/sys/devices/system/cpu/cpu<N>/online`. This module reproduces that
//! interface textually so experiment scripts in this repository read like
//! the shell commands used on the real machines.

use crate::topology::{CpuId, Topology};

/// Errors surfaced by the emulated sysfs, mirroring the errno a real
/// kernel would return.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SysfsError {
    /// Path does not exist (`ENOENT`).
    NoEntry(String),
    /// Write not permitted (`EPERM`), e.g. offlining cpu0.
    NotPermitted(String),
    /// Malformed value written (`EINVAL`).
    Invalid(String),
}

impl std::fmt::Display for SysfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SysfsError::NoEntry(p) => write!(f, "{p}: No such file or directory"),
            SysfsError::NotPermitted(p) => write!(f, "{p}: Operation not permitted"),
            SysfsError::Invalid(v) => write!(f, "write error: Invalid argument: {v:?}"),
        }
    }
}

impl std::error::Error for SysfsError {}

/// The emulated `/sys/devices/system/cpu` subtree.
#[derive(Debug)]
pub struct CpuSysfs<'a> {
    topo: &'a mut Topology,
}

const PREFIX: &str = "/sys/devices/system/cpu";

impl<'a> CpuSysfs<'a> {
    /// Wrap a topology.
    pub fn new(topo: &'a mut Topology) -> Self {
        CpuSysfs { topo }
    }

    /// Read a sysfs file; supported paths:
    ///
    /// * `/sys/devices/system/cpu/present` — `0-N`
    /// * `/sys/devices/system/cpu/online` — range list of online CPUs
    /// * `/sys/devices/system/cpu/cpu<N>/online` — `0` or `1`
    /// * `/sys/devices/system/cpu/cpu<N>/topology/core_id`
    /// * `/sys/devices/system/cpu/cpu<N>/topology/thread_siblings_list`
    pub fn read(&self, path: &str) -> Result<String, SysfsError> {
        let rel = path
            .strip_prefix(PREFIX)
            .ok_or_else(|| SysfsError::NoEntry(path.into()))?
            .trim_start_matches('/');
        match rel {
            "present" => Ok(format!("0-{}", self.topo.present() - 1)),
            "online" => {
                Ok(range_list(&self.topo.online_cpus().iter().map(|c| c.0).collect::<Vec<_>>()))
            }
            _ => {
                let (cpu, leaf) = parse_cpu_path(rel, path)?;
                if cpu.0 >= self.topo.present() {
                    return Err(SysfsError::NoEntry(path.into()));
                }
                match leaf {
                    "online" => Ok(if self.topo.is_online(cpu) { "1" } else { "0" }.into()),
                    "topology/core_id" => Ok(self.topo.core_of(cpu).0.to_string()),
                    "topology/thread_siblings_list" => {
                        let mut ids = vec![cpu.0];
                        if let Some(s) = self.topo.sibling_of(cpu) {
                            ids.push(s.0);
                        }
                        ids.sort_unstable();
                        Ok(range_list(&ids))
                    }
                    _ => Err(SysfsError::NoEntry(path.into())),
                }
            }
        }
    }

    /// Write a sysfs file; only `cpu<N>/online` accepts writes, with
    /// values `"0"` and `"1"` (trailing newline tolerated, like `echo`).
    pub fn write(&mut self, path: &str, value: &str) -> Result<(), SysfsError> {
        let rel = path
            .strip_prefix(PREFIX)
            .ok_or_else(|| SysfsError::NoEntry(path.into()))?
            .trim_start_matches('/');
        let (cpu, leaf) = parse_cpu_path(rel, path)?;
        if cpu.0 >= self.topo.present() {
            return Err(SysfsError::NoEntry(path.into()));
        }
        if leaf != "online" {
            return Err(SysfsError::NotPermitted(path.into()));
        }
        match value.trim() {
            "1" => {
                self.topo.online(cpu);
                Ok(())
            }
            "0" => {
                if cpu.0 == 0 {
                    return Err(SysfsError::NotPermitted(path.into()));
                }
                self.topo.offline(cpu);
                Ok(())
            }
            other => Err(SysfsError::Invalid(other.into())),
        }
    }
}

fn parse_cpu_path<'p>(rel: &'p str, full: &str) -> Result<(CpuId, &'p str), SysfsError> {
    let rest = rel.strip_prefix("cpu").ok_or_else(|| SysfsError::NoEntry(full.into()))?;
    let slash = rest.find('/').ok_or_else(|| SysfsError::NoEntry(full.into()))?;
    let n: u32 = rest[..slash].parse().map_err(|_| SysfsError::NoEntry(full.into()))?;
    Ok((CpuId(n), &rest[slash + 1..]))
}

/// Render ids as the kernel's range-list format, e.g. `0-3,6`.
fn range_list(ids: &[u32]) -> String {
    let mut parts = Vec::new();
    let mut i = 0;
    while i < ids.len() {
        let start = ids[i];
        let mut end = start;
        while i + 1 < ids.len() && ids[i + 1] == end + 1 {
            i += 1;
            end = ids[i];
        }
        if start == end {
            parts.push(format!("{start}"));
        } else {
            parts.push(format!("{start}-{end}"));
        }
        i += 1;
    }
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeSpec;

    fn topo() -> Topology {
        Topology::new(NodeSpec::dell_r410())
    }

    #[test]
    fn read_present_and_online() {
        let mut t = topo();
        let fs = CpuSysfs::new(&mut t);
        assert_eq!(fs.read("/sys/devices/system/cpu/present").unwrap(), "0-7");
        assert_eq!(fs.read("/sys/devices/system/cpu/online").unwrap(), "0-7");
    }

    #[test]
    fn offline_a_sibling_like_the_paper() {
        let mut t = topo();
        let mut fs = CpuSysfs::new(&mut t);
        fs.write("/sys/devices/system/cpu/cpu7/online", "0\n").unwrap();
        assert_eq!(fs.read("/sys/devices/system/cpu/cpu7/online").unwrap(), "0");
        assert_eq!(fs.read("/sys/devices/system/cpu/online").unwrap(), "0-6");
    }

    #[test]
    fn range_list_handles_gaps() {
        assert_eq!(range_list(&[0, 1, 2, 5, 7, 8]), "0-2,5,7-8");
        assert_eq!(range_list(&[3]), "3");
        assert_eq!(range_list(&[]), "");
    }

    #[test]
    fn topology_files() {
        let mut t = topo();
        let fs = CpuSysfs::new(&mut t);
        assert_eq!(fs.read("/sys/devices/system/cpu/cpu5/topology/core_id").unwrap(), "1");
        assert_eq!(
            fs.read("/sys/devices/system/cpu/cpu5/topology/thread_siblings_list").unwrap(),
            "1,5"
        );
        assert_eq!(
            fs.read("/sys/devices/system/cpu/cpu0/topology/thread_siblings_list").unwrap(),
            "0,4"
        );
    }

    #[test]
    fn cpu0_offline_is_eperm() {
        let mut t = topo();
        let mut fs = CpuSysfs::new(&mut t);
        let err = fs.write("/sys/devices/system/cpu/cpu0/online", "0").unwrap_err();
        assert!(matches!(err, SysfsError::NotPermitted(_)));
    }

    #[test]
    fn bad_paths_are_enoent() {
        let mut t = topo();
        let fs = CpuSysfs::new(&mut t);
        assert!(matches!(
            fs.read("/sys/devices/system/cpu/cpu99/online"),
            Err(SysfsError::NoEntry(_))
        ));
        assert!(matches!(fs.read("/proc/cpuinfo"), Err(SysfsError::NoEntry(_))));
        assert!(matches!(
            fs.read("/sys/devices/system/cpu/cpu1/bogus"),
            Err(SysfsError::NoEntry(_))
        ));
    }

    #[test]
    fn bad_value_is_einval() {
        let mut t = topo();
        let mut fs = CpuSysfs::new(&mut t);
        let err = fs.write("/sys/devices/system/cpu/cpu1/online", "yes").unwrap_err();
        assert!(matches!(err, SysfsError::Invalid(_)));
    }

    #[test]
    fn error_display_looks_like_shell_output() {
        let e = SysfsError::NotPermitted("/sys/devices/system/cpu/cpu0/online".into());
        assert!(e.to_string().contains("Operation not permitted"));
    }
}
