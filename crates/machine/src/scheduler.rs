//! The node scheduler: time-shared execution of thread programs over the
//! online logical CPUs, with SMT-aware progress rates.
//!
//! The simulation runs entirely in **work time** (time during which the
//! node is executing host software). Because an SMI freezes every logical
//! CPU of the node simultaneously, freezing commutes with scheduling; the
//! [`NodeExecutor`](crate::executor::NodeExecutor) maps the resulting
//! makespan through a [`FreezeSchedule`](sim_core::FreezeSchedule)
//! afterwards. An integration test (`tests/freeze_commutes.rs` at the
//! workspace root) verifies this equivalence against a step-by-step
//! interleaving.
//!
//! Scheduling policy is a CFS-like least-vruntime discipline: at every
//! event the runnable threads with the smallest virtual runtime get the
//! online CPUs, spread across physical cores before doubling up on HTT
//! siblings (Linux's sched-domain balancing does the same).

use crate::smt::{pair_rates, ExecProfile, SmtParams};
use crate::topology::{CpuId, Topology};
use crate::workload::{Phase, PipeId, ThreadSpec};
use sim_core::{SimDuration, SimTime, Trace, TraceKind};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Tunable scheduler/OS parameters.
#[derive(Clone, Debug, jsonio::ToJson)]
pub struct SchedParams {
    /// Preemption quantum.
    pub quantum: SimDuration,
    /// CPU cost charged to a thread on wakeup or involuntary switch.
    pub ctx_switch: SimDuration,
    /// Pipe buffer capacity in bytes (Linux default: 64 KiB).
    pub pipe_capacity: u64,
    /// CPU cost per KiB copied through a pipe (charged to each side).
    pub pipe_cost_per_kib: SimDuration,
    /// Fixed syscall overhead per pipe operation.
    pub pipe_op_overhead: SimDuration,
    /// SMT model parameters.
    pub smt: SmtParams,
}

impl Default for SchedParams {
    fn default() -> Self {
        SchedParams {
            quantum: SimDuration::from_millis(10),
            ctx_switch: SimDuration::from_micros(5),
            pipe_capacity: 64 * 1024,
            pipe_cost_per_kib: SimDuration::from_micros(1),
            pipe_op_overhead: SimDuration::from_nanos(700),
            smt: SmtParams::default(),
        }
    }
}

/// Why a run could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// Every unfinished thread is blocked on a pipe.
    Deadlock {
        /// Ids of the blocked threads.
        blocked: Vec<usize>,
    },
    /// A single pipe write larger than the pipe capacity can never complete.
    WriteTooLarge {
        /// Offending thread.
        thread: usize,
        /// Requested bytes.
        bytes: u64,
    },
    /// A thread's affinity mask names a CPU that is not online
    /// (Linux rejects masks with no online CPU).
    PinnedOffline {
        /// Offending thread.
        thread: usize,
        /// The offline CPU id it is pinned to.
        cpu: u32,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Deadlock { blocked } => {
                write!(f, "deadlock: threads {blocked:?} all blocked on pipes")
            }
            SchedError::WriteTooLarge { thread, bytes } => {
                write!(f, "thread {thread}: pipe write of {bytes} B exceeds capacity")
            }
            SchedError::PinnedOffline { thread, cpu } => {
                write!(f, "thread {thread} pinned to offline cpu{cpu}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Result of running a thread set to completion.
#[derive(Clone, Debug, jsonio::ToJson)]
pub struct SchedOutcome {
    /// Work-time instant the last thread finished.
    pub makespan: SimDuration,
    /// Per-thread finish instants (work time).
    pub finish_times: Vec<SimDuration>,
    /// Context switches performed.
    pub context_switches: u64,
    /// Sum over threads of executed solo-equivalent work.
    pub total_work: SimDuration,
    /// Mean online-CPU utilization over the run (assigned CPU-time /
    /// (makespan × online CPUs)).
    pub utilization: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Waiting for `start_delay`.
    Sleeping,
    Runnable,
    BlockedWrite(PipeId),
    BlockedRead(PipeId),
    Done,
}

struct ThreadRt {
    phases: Vec<Phase>,
    phase_idx: usize,
    /// Remaining solo-equivalent work in the current compute leg, in ns.
    remaining_ns: f64,
    profile: ExecProfile,
    /// Pipe operation to perform once the compute leg finishes.
    pending_op: Option<(bool, PipeId, u64)>, // (is_write, pipe, bytes)
    state: State,
    start_delay_ns: f64,
    vruntime_ns: f64,
    finish_ns: f64,
    executed_ns: f64,
}

#[derive(Default)]
struct PipeRt {
    fill: u64,
    wait_read: VecDeque<usize>,
    wait_write: VecDeque<usize>,
}

/// Run `threads` on the online CPUs of `topo` until all complete.
pub fn run(
    topo: &Topology,
    params: &SchedParams,
    threads: &[ThreadSpec],
) -> Result<SchedOutcome, SchedError> {
    let mut trace = Trace::disabled();
    run_with_trace(topo, params, threads, &mut trace)
}

/// Like [`run`], recording a [`TraceKind::Schedule`] event (in node work
/// time) every time a logical CPU's assigned thread changes. Feed the
/// trace to [`crate::gantt::render_gantt`] for a wall-time timeline.
pub fn run_with_trace(
    topo: &Topology,
    params: &SchedParams,
    threads: &[ThreadSpec],
    trace: &mut Trace,
) -> Result<SchedOutcome, SchedError> {
    assert!(!threads.is_empty(), "no threads to run");
    let online = topo.online_cpus();
    assert!(!online.is_empty(), "no online CPUs");
    // Validate affinities (Linux rejects masks with no online CPU).
    let mut pinned: Vec<Option<usize>> = Vec::with_capacity(threads.len());
    for (i, t) in threads.iter().enumerate() {
        match t.pinned {
            None => pinned.push(None),
            Some(cpu) => match online.iter().position(|&c| c == cpu) {
                Some(slot) => pinned.push(Some(slot)),
                None => return Err(SchedError::PinnedOffline { thread: i, cpu: cpu.0 }),
            },
        }
    }

    // Validate pipe writes up front.
    for (i, t) in threads.iter().enumerate() {
        for p in &t.program.phases {
            if let Phase::PipeWrite { bytes, .. } = p {
                if *bytes > params.pipe_capacity {
                    return Err(SchedError::WriteTooLarge { thread: i, bytes: *bytes });
                }
            }
        }
    }

    let mut rts: Vec<ThreadRt> = threads
        .iter()
        .map(|t| {
            let mut rt = ThreadRt {
                phases: t.program.phases.clone(),
                phase_idx: 0,
                remaining_ns: 0.0,
                profile: ExecProfile::compute_bound(),
                pending_op: None,
                state: if t.start_delay.is_zero() { State::Runnable } else { State::Sleeping },
                start_delay_ns: t.start_delay.as_nanos() as f64,
                vruntime_ns: 0.0,
                finish_ns: 0.0,
                executed_ns: 0.0,
            };
            begin_phase(&mut rt, params);
            rt
        })
        .collect();

    let mut pipes: BTreeMap<PipeId, PipeRt> = BTreeMap::new();
    let mut now_ns = 0.0f64;
    let mut prev_assignment: Vec<Option<usize>> = vec![None; online.len()];
    let mut context_switches: u64 = 0;
    let mut assigned_cpu_ns = 0.0f64;
    let quantum_ns = params.quantum.as_nanos() as f64;

    // Threads whose programs are empty finish immediately.
    for rt in rts.iter_mut() {
        maybe_finish(rt, now_ns);
    }

    loop {
        // Wake sleepers whose start time has arrived.
        for rt in rts.iter_mut() {
            if rt.state == State::Sleeping && rt.start_delay_ns <= now_ns + 1e-9 {
                rt.state = State::Runnable;
            }
        }

        if rts.iter().all(|r| r.state == State::Done) {
            break;
        }

        // Runnable threads ordered by least vruntime (ties by id).
        let mut runnable: Vec<usize> =
            (0..rts.len()).filter(|&i| rts[i].state == State::Runnable).collect();
        runnable
            .sort_by(|&a, &b| rts[a].vruntime_ns.total_cmp(&rts[b].vruntime_ns).then(a.cmp(&b)));

        if runnable.is_empty() {
            // Either everyone left is sleeping (jump to next wake) or
            // everyone is blocked (deadlock).
            let next_wake = rts
                .iter()
                .filter(|r| r.state == State::Sleeping)
                .map(|r| r.start_delay_ns)
                .fold(f64::INFINITY, f64::min);
            if next_wake.is_finite() {
                now_ns = next_wake;
                continue;
            }
            let blocked: Vec<usize> =
                (0..rts.len()).filter(|&i| !matches!(rts[i].state, State::Done)).collect();
            return Err(SchedError::Deadlock { blocked });
        }

        // Place threads on CPUs: affinity first, then spread across
        // physical cores.
        let assignment = place(topo, &online, &runnable, &pinned);

        // Count context switches against the previous assignment.
        for (slot, &thr) in assignment.iter().enumerate() {
            if thr != prev_assignment[slot] {
                if thr.is_some() {
                    context_switches += 1;
                }
                trace.record(
                    SimTime::from_nanos(now_ns.round() as u64),
                    TraceKind::Schedule { cpu: online[slot].0, thread: thr.map(|t| t as u32) },
                );
            }
        }

        // Progress rate per assigned thread from SMT pairing.
        let rates = compute_rates(topo, &online, &assignment, &rts, &params.smt);

        // Step length: nearest completion, capped by the quantum and the
        // next sleeper wake.
        let mut dt = quantum_ns;
        for (slot, &thr) in assignment.iter().enumerate() {
            if let Some(i) = thr {
                let rate = rates[slot];
                debug_assert!(rate > 0.0);
                dt = dt.min(rts[i].remaining_ns / rate);
            }
        }
        for rt in rts.iter() {
            if rt.state == State::Sleeping {
                dt = dt.min((rt.start_delay_ns - now_ns).max(0.0));
            }
        }
        let dt = dt.max(1.0); // guarantee progress (>= 1 ns)

        // Advance.
        now_ns += dt;
        for (slot, &thr) in assignment.iter().enumerate() {
            if let Some(i) = thr {
                let progress = dt * rates[slot];
                rts[i].remaining_ns = (rts[i].remaining_ns - progress).max(0.0);
                rts[i].executed_ns += progress;
                rts[i].vruntime_ns += dt;
                assigned_cpu_ns += dt;
            }
        }

        // Handle completions in thread-id order for determinism.
        for i in 0..rts.len() {
            if rts[i].state == State::Runnable && rts[i].remaining_ns <= 1e-6 {
                if phase_done(&rts[i]) {
                    // Only a trailing wakeup cost remained (the program was
                    // already exhausted); the thread is now finished.
                    maybe_finish(&mut rts[i], now_ns);
                } else {
                    complete_leg(i, &mut rts, &mut pipes, params, now_ns);
                }
            }
        }

        prev_assignment = assignment;
    }

    let makespan_ns = rts.iter().map(|r| r.finish_ns).fold(0.0, f64::max);
    let online_n = online.len() as f64;
    Ok(SchedOutcome {
        makespan: SimDuration::from_nanos(makespan_ns.round() as u64),
        finish_times: rts
            .iter()
            .map(|r| SimDuration::from_nanos(r.finish_ns.round() as u64))
            .collect(),
        context_switches,
        total_work: SimDuration::from_nanos(
            rts.iter().map(|r| r.executed_ns).sum::<f64>().round() as u64
        ),
        utilization: if makespan_ns > 0.0 {
            assigned_cpu_ns / (makespan_ns * online_n)
        } else {
            0.0
        },
    })
}

/// True when the thread has consumed all phases.
fn phase_done(rt: &ThreadRt) -> bool {
    rt.phase_idx >= rt.phases.len() && rt.pending_op.is_none() && rt.remaining_ns <= 1e-6
}

/// Load the current phase's compute leg into the runtime state.
fn begin_phase(rt: &mut ThreadRt, params: &SchedParams) {
    let Some(phase) = rt.phases.get(rt.phase_idx) else {
        return;
    };
    match phase {
        Phase::Compute { work, profile } => {
            rt.remaining_ns = work.as_nanos() as f64;
            rt.profile = *profile;
            rt.pending_op = None;
        }
        Phase::Syscalls { count, each } => {
            rt.remaining_ns = (*count as f64) * each.as_nanos() as f64;
            rt.profile = ExecProfile::compute_bound();
            rt.pending_op = None;
        }
        Phase::PipeWrite { pipe, bytes } => {
            rt.remaining_ns = pipe_cpu_cost(params, *bytes);
            rt.profile = ExecProfile::compute_bound();
            rt.pending_op = Some((true, *pipe, *bytes));
        }
        Phase::PipeRead { pipe, bytes } => {
            rt.remaining_ns = pipe_cpu_cost(params, *bytes);
            rt.profile = ExecProfile::compute_bound();
            rt.pending_op = Some((false, *pipe, *bytes));
        }
    }
}

fn pipe_cpu_cost(params: &SchedParams, bytes: u64) -> f64 {
    params.pipe_op_overhead.as_nanos() as f64
        + params.pipe_cost_per_kib.as_nanos() as f64 * (bytes as f64 / 1024.0)
}

/// Mark a thread finished if its program is exhausted.
fn maybe_finish(rt: &mut ThreadRt, now_ns: f64) {
    if phase_done(rt) && rt.state != State::Done {
        rt.state = State::Done;
        rt.finish_ns = now_ns;
    }
}

/// A thread finished the compute leg of its current phase: perform the
/// pipe side effect (possibly blocking) and move on.
fn complete_leg(
    i: usize,
    rts: &mut [ThreadRt],
    pipes: &mut BTreeMap<PipeId, PipeRt>,
    params: &SchedParams,
    now_ns: f64,
) {
    match rts[i].pending_op.take() {
        None => {
            rts[i].phase_idx += 1;
            begin_phase(&mut rts[i], params);
            maybe_finish(&mut rts[i], now_ns);
            // A zero-length next leg completes immediately.
            if rts[i].state == State::Runnable
                && rts[i].remaining_ns <= 1e-6
                && !phase_done(&rts[i])
            {
                complete_leg(i, rts, pipes, params, now_ns);
            }
        }
        Some((true, pipe, bytes)) => {
            let p = pipes.entry(pipe).or_default();
            if p.fill + bytes <= params.pipe_capacity {
                p.fill += bytes;
                rts[i].phase_idx += 1;
                begin_phase(&mut rts[i], params);
                maybe_finish(&mut rts[i], now_ns);
                wake_waiters(pipe, rts, pipes, params, now_ns);
            } else {
                rts[i].pending_op = Some((true, pipe, bytes));
                rts[i].state = State::BlockedWrite(pipe);
                p.wait_write.push_back(i);
            }
        }
        Some((false, pipe, bytes)) => {
            let p = pipes.entry(pipe).or_default();
            if p.fill >= bytes {
                p.fill -= bytes;
                rts[i].phase_idx += 1;
                begin_phase(&mut rts[i], params);
                maybe_finish(&mut rts[i], now_ns);
                wake_waiters(pipe, rts, pipes, params, now_ns);
            } else {
                rts[i].pending_op = Some((false, pipe, bytes));
                rts[i].state = State::BlockedRead(pipe);
                p.wait_read.push_back(i);
            }
        }
    }
}

/// After a pipe's fill level changed, complete any waiter whose operation
/// can now proceed (FIFO per direction; loops until quiescent).
fn wake_waiters(
    pipe: PipeId,
    rts: &mut [ThreadRt],
    pipes: &mut BTreeMap<PipeId, PipeRt>,
    params: &SchedParams,
    now_ns: f64,
) {
    loop {
        let mut progressed = false;
        // Readers first (frees writers faster, like the kernel's pipe wake).
        let reader = {
            let p = pipes.entry(pipe).or_default();
            let head = p
                .wait_read
                .front()
                .and_then(|&cand| rts[cand].pending_op.map(|(_, _, bytes)| (cand, bytes)));
            match head {
                Some((cand, bytes)) if p.fill >= bytes => {
                    p.wait_read.pop_front();
                    p.fill -= bytes;
                    Some(cand)
                }
                _ => None,
            }
        };
        if let Some(cand) = reader {
            finish_wake(cand, rts, params, now_ns);
            progressed = true;
        }
        let writer = {
            let p = pipes.entry(pipe).or_default();
            let head = p
                .wait_write
                .front()
                .and_then(|&cand| rts[cand].pending_op.map(|(_, _, bytes)| (cand, bytes)));
            match head {
                Some((cand, bytes)) if p.fill + bytes <= params.pipe_capacity => {
                    p.wait_write.pop_front();
                    p.fill += bytes;
                    Some(cand)
                }
                _ => None,
            }
        };
        if let Some(cand) = writer {
            finish_wake(cand, rts, params, now_ns);
            progressed = true;
        }
        if !progressed {
            return;
        }
    }
}

/// A blocked thread's pipe op just completed during a wake: charge the
/// context-switch cost and start the next phase.
fn finish_wake(i: usize, rts: &mut [ThreadRt], params: &SchedParams, now_ns: f64) {
    rts[i].pending_op = None;
    rts[i].state = State::Runnable;
    rts[i].phase_idx += 1;
    begin_phase(&mut rts[i], params);
    // Wakeup cost is paid before the next phase's work.
    rts[i].remaining_ns += params.ctx_switch.as_nanos() as f64;
    maybe_finish_with_pending_cost(&mut rts[i], params, now_ns);
}

/// Like `maybe_finish`, but a thread woken at its final phase still owes
/// the wakeup cost; treat the residual cost as a trailing compute leg.
fn maybe_finish_with_pending_cost(rt: &mut ThreadRt, _params: &SchedParams, now_ns: f64) {
    if rt.phase_idx >= rt.phases.len() && rt.pending_op.is_none() {
        // Only the wakeup cost remains; let it drain as a normal leg if
        // nonzero, otherwise finish now.
        if rt.remaining_ns <= 1e-6 {
            rt.state = State::Done;
            rt.finish_ns = now_ns;
        }
    }
}

/// Greedy placement: pinned threads take their CPU first (in vruntime
/// order), then unpinned threads fill the remaining online CPUs,
/// preferring CPUs whose physical core is not yet occupied. Returns, per
/// online-CPU slot, the thread index assigned.
fn place(
    topo: &Topology,
    online: &[CpuId],
    runnable: &[usize],
    pinned: &[Option<usize>],
) -> Vec<Option<usize>> {
    let mut assignment: Vec<Option<usize>> = vec![None; online.len()];
    let mut core_used: BTreeMap<u32, u32> = BTreeMap::new();

    // Pass 0: affinity. First (= least vruntime) pinned thread per CPU wins.
    for &t in runnable {
        if let Some(slot) = pinned[t] {
            if assignment[slot].is_none() {
                assignment[slot] = Some(t);
                *core_used.entry(topo.core_of(online[slot]).0).or_insert(0) += 1;
            }
        }
    }
    // A pinned thread whose CPU is taken stays off-CPU this round (its
    // affinity mask forbids anywhere else), so only unpinned threads
    // participate in the fill passes.
    let unpinned: Vec<usize> = runnable.iter().copied().filter(|&t| pinned[t].is_none()).collect();
    let mut next = unpinned.into_iter();

    // Pass 1: one thread per physical core.
    for (slot, &cpu) in online.iter().enumerate() {
        if assignment[slot].is_some() {
            continue;
        }
        let core = topo.core_of(cpu).0;
        if core_used.get(&core).copied().unwrap_or(0) == 0 {
            if let Some(t) = next.next() {
                assignment[slot] = Some(t);
                *core_used.entry(core).or_insert(0) += 1;
            }
        }
    }
    // Pass 2: fill HTT siblings.
    for (slot, &cpu) in online.iter().enumerate() {
        if assignment[slot].is_none() {
            if let Some(t) = next.next() {
                assignment[slot] = Some(t);
                *core_used.entry(topo.core_of(cpu).0).or_insert(0) += 1;
            } else {
                break;
            }
        }
    }
    assignment
}

/// Per-slot progress rates given the placement.
fn compute_rates(
    topo: &Topology,
    online: &[CpuId],
    assignment: &[Option<usize>],
    rts: &[ThreadRt],
    smt: &SmtParams,
) -> Vec<f64> {
    let mut rates = vec![0.0; assignment.len()];
    // Group (slot, thread) pairs by physical core.
    let mut by_core: BTreeMap<u32, Vec<(usize, usize)>> = BTreeMap::new();
    for (slot, &cpu) in online.iter().enumerate() {
        if let Some(t) = assignment[slot] {
            by_core.entry(topo.core_of(cpu).0).or_default().push((slot, t));
        }
    }
    for slots in by_core.values() {
        match slots.as_slice() {
            [(s, _)] => rates[*s] = 1.0,
            [(s1, t1), (s2, t2)] => {
                let (ra, rb) = pair_rates(&rts[*t1].profile, &rts[*t2].profile, smt);
                rates[*s1] = ra;
                rates[*s2] = rb;
            }
            more => unreachable!("more than 2 threads on one core: {more:?}"),
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeSpec;
    use crate::workload::ThreadProgram;

    fn r410() -> Topology {
        Topology::new(NodeSpec::dell_r410())
    }

    fn compute_thread(ms: u64) -> ThreadSpec {
        ThreadSpec::new(ThreadProgram::new().then(Phase::compute(SimDuration::from_millis(ms))))
    }

    #[test]
    fn single_thread_takes_its_solo_time() {
        let topo = r410();
        let out = run(&topo, &SchedParams::default(), &[compute_thread(50)]).unwrap();
        assert_eq!(out.makespan, SimDuration::from_millis(50));
        assert_eq!(out.context_switches, 1);
    }

    #[test]
    fn threads_up_to_core_count_run_in_parallel() {
        let topo = r410();
        let threads: Vec<_> = (0..4).map(|_| compute_thread(50)).collect();
        let out = run(&topo, &SchedParams::default(), &threads).unwrap();
        assert_eq!(out.makespan, SimDuration::from_millis(50));
    }

    #[test]
    fn compute_bound_threads_gain_nothing_from_htt() {
        let topo = r410();
        let threads: Vec<_> = (0..8).map(|_| compute_thread(50)).collect();
        let out = run(&topo, &SchedParams::default(), &threads).unwrap();
        // 8 compute-bound threads on 4 cores: ~2x the solo time.
        let ms = out.makespan.as_millis_f64();
        assert!((98.0..=103.0).contains(&ms), "makespan {ms} ms");
    }

    #[test]
    fn memory_bound_threads_do_gain_from_htt() {
        let topo = r410();
        let mk = |n: usize| -> Vec<ThreadSpec> {
            (0..n)
                .map(|_| {
                    ThreadSpec::new(
                        ThreadProgram::new().then(Phase::memory(SimDuration::from_millis(50))),
                    )
                })
                .collect()
        };
        let out8 = run(&topo, &SchedParams::default(), &mk(8)).unwrap();
        // With contention the gain is modest but 8 memory-bound threads
        // should beat the 2x serialization of the compute-bound case.
        let ms = out8.makespan.as_millis_f64();
        assert!(ms < 98.0, "makespan {ms} ms should show some SMT gain");
        assert!(ms > 55.0, "makespan {ms} ms cannot be near-perfect under contention");
    }

    #[test]
    fn offline_cpus_serialize_execution() {
        let mut topo = r410();
        topo.set_online_count(1);
        let threads: Vec<_> = (0..4).map(|_| compute_thread(10)).collect();
        let out = run(&topo, &SchedParams::default(), &threads).unwrap();
        assert!((out.makespan.as_millis_f64() - 40.0).abs() < 1.0, "{:?}", out.makespan);
        // Round-robin across quanta: many context switches.
        assert!(out.context_switches >= 4);
    }

    #[test]
    fn vruntime_fairness_interleaves_threads() {
        let mut topo = r410();
        topo.set_online_count(1);
        // Two equal threads on one CPU should finish near-simultaneously.
        let threads: Vec<_> = (0..2).map(|_| compute_thread(40)).collect();
        let out = run(&topo, &SchedParams::default(), &threads).unwrap();
        let f0 = out.finish_times[0].as_millis_f64();
        let f1 = out.finish_times[1].as_millis_f64();
        assert!((f0 - f1).abs() <= 10.5, "finishes {f0} vs {f1}");
    }

    #[test]
    fn start_delay_defers_execution() {
        let topo = r410();
        let t = ThreadSpec::new(
            ThreadProgram::new().then(Phase::compute(SimDuration::from_millis(10))),
        )
        .delayed(SimDuration::from_millis(100));
        let out = run(&topo, &SchedParams::default(), &[t]).unwrap();
        assert!((out.makespan.as_millis_f64() - 110.0).abs() < 0.5, "{:?}", out.makespan);
    }

    #[test]
    fn pipe_roundtrip_completes() {
        let topo = r410();
        let a = ThreadSpec::new(
            ThreadProgram::new()
                .then(Phase::PipeWrite { pipe: PipeId(0), bytes: 1024 })
                .then(Phase::PipeRead { pipe: PipeId(1), bytes: 1024 }),
        );
        let b = ThreadSpec::new(
            ThreadProgram::new()
                .then(Phase::PipeRead { pipe: PipeId(0), bytes: 1024 })
                .then(Phase::PipeWrite { pipe: PipeId(1), bytes: 1024 }),
        );
        let out = run(&topo, &SchedParams::default(), &[a, b]).unwrap();
        assert!(out.makespan > SimDuration::ZERO);
    }

    #[test]
    fn reader_blocks_until_writer_delivers() {
        let topo = r410();
        let writer = ThreadSpec::new(
            ThreadProgram::new()
                .then(Phase::compute(SimDuration::from_millis(20)))
                .then(Phase::PipeWrite { pipe: PipeId(0), bytes: 64 }),
        );
        let reader = ThreadSpec::new(
            ThreadProgram::new().then(Phase::PipeRead { pipe: PipeId(0), bytes: 64 }),
        );
        let out = run(&topo, &SchedParams::default(), &[writer, reader]).unwrap();
        // Reader cannot finish before the writer's 20ms compute.
        assert!(out.finish_times[1] >= SimDuration::from_millis(20));
    }

    #[test]
    fn writer_blocks_on_full_pipe() {
        let topo = r410();
        let params = SchedParams { pipe_capacity: 1024, ..SchedParams::default() };
        let writer = ThreadSpec::new(
            ThreadProgram::new()
                .then(Phase::PipeWrite { pipe: PipeId(0), bytes: 1024 })
                .then(Phase::PipeWrite { pipe: PipeId(0), bytes: 1024 }),
        );
        let reader = ThreadSpec::new(
            ThreadProgram::new()
                .then(Phase::compute(SimDuration::from_millis(30)))
                .then(Phase::PipeRead { pipe: PipeId(0), bytes: 1024 })
                .then(Phase::PipeRead { pipe: PipeId(0), bytes: 1024 }),
        );
        let out = run(&topo, &params, &[writer, reader]).unwrap();
        // Second write can only complete after the reader drains at ~30ms.
        assert!(out.finish_times[0] >= SimDuration::from_millis(30));
    }

    #[test]
    fn deadlock_is_reported() {
        let topo = r410();
        let a = ThreadSpec::new(
            ThreadProgram::new().then(Phase::PipeRead { pipe: PipeId(0), bytes: 1 }),
        );
        let b = ThreadSpec::new(
            ThreadProgram::new().then(Phase::PipeRead { pipe: PipeId(1), bytes: 1 }),
        );
        let err = run(&topo, &SchedParams::default(), &[a, b]).unwrap_err();
        assert_eq!(err, SchedError::Deadlock { blocked: vec![0, 1] });
    }

    #[test]
    fn oversized_write_is_rejected() {
        let topo = r410();
        let t = ThreadSpec::new(
            ThreadProgram::new().then(Phase::PipeWrite { pipe: PipeId(0), bytes: 1 << 20 }),
        );
        let err = run(&topo, &SchedParams::default(), &[t]).unwrap_err();
        assert!(matches!(err, SchedError::WriteTooLarge { thread: 0, .. }));
    }

    #[test]
    fn ping_pong_many_rounds() {
        let topo = r410();
        let rounds = 200;
        let mut pa = ThreadProgram::new();
        let mut pb = ThreadProgram::new();
        for _ in 0..rounds {
            pa = pa
                .then(Phase::PipeWrite { pipe: PipeId(0), bytes: 4 })
                .then(Phase::PipeRead { pipe: PipeId(1), bytes: 4 });
            pb = pb
                .then(Phase::PipeRead { pipe: PipeId(0), bytes: 4 })
                .then(Phase::PipeWrite { pipe: PipeId(1), bytes: 4 });
        }
        let out = run(&topo, &SchedParams::default(), &[ThreadSpec::new(pa), ThreadSpec::new(pb)])
            .unwrap();
        assert!(out.makespan > SimDuration::ZERO);
        // Both threads complete all rounds.
        assert_eq!(out.finish_times.len(), 2);
    }

    #[test]
    fn utilization_is_sane() {
        let topo = r410();
        let threads: Vec<_> = (0..8).map(|_| compute_thread(20)).collect();
        let out = run(&topo, &SchedParams::default(), &threads).unwrap();
        assert!(out.utilization > 0.9, "utilization {}", out.utilization);
        assert!(out.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn syscall_phase_behaves_like_compute() {
        let topo = r410();
        let t = ThreadSpec::new(
            ThreadProgram::new()
                .then(Phase::Syscalls { count: 1000, each: SimDuration::from_micros(10) }),
        );
        let out = run(&topo, &SchedParams::default(), &[t]).unwrap();
        assert_eq!(out.makespan, SimDuration::from_millis(10));
    }
}

#[cfg(test)]
mod affinity_tests {
    use super::*;
    use crate::topology::NodeSpec;
    use crate::workload::ThreadProgram;

    fn compute(ms: u64) -> ThreadProgram {
        ThreadProgram::new().then(Phase::compute(SimDuration::from_millis(ms)))
    }

    #[test]
    fn pinned_threads_share_their_cpu() {
        // Two threads pinned to cpu0 serialize even with 8 CPUs online.
        let topo = Topology::new(NodeSpec::dell_r410());
        let threads = vec![
            ThreadSpec::new(compute(40)).pinned_to(CpuId(0)),
            ThreadSpec::new(compute(40)).pinned_to(CpuId(0)),
        ];
        let out = run(&topo, &SchedParams::default(), &threads).unwrap();
        assert!((out.makespan.as_millis_f64() - 80.0).abs() < 1.0, "{:?}", out.makespan);
    }

    #[test]
    fn pinning_across_cpus_runs_in_parallel() {
        let topo = Topology::new(NodeSpec::dell_r410());
        let threads: Vec<ThreadSpec> =
            (0..4).map(|i| ThreadSpec::new(compute(40)).pinned_to(CpuId(i))).collect();
        let out = run(&topo, &SchedParams::default(), &threads).unwrap();
        assert!((out.makespan.as_millis_f64() - 40.0).abs() < 0.5, "{:?}", out.makespan);
    }

    #[test]
    fn pinned_siblings_pay_the_smt_tax() {
        // cpu0 and cpu4 share physical core 0 on the R410: two
        // compute-bound threads pinned there run at half speed each.
        let topo = Topology::new(NodeSpec::dell_r410());
        let threads = vec![
            ThreadSpec::new(compute(40)).pinned_to(CpuId(0)),
            ThreadSpec::new(compute(40)).pinned_to(CpuId(4)),
        ];
        let out = run(&topo, &SchedParams::default(), &threads).unwrap();
        let ms = out.makespan.as_millis_f64();
        assert!((75.0..85.0).contains(&ms), "expected ~2x slowdown, got {ms} ms");
    }

    #[test]
    fn unpinned_threads_avoid_the_pinned_cpu_when_possible() {
        // One pinned hog on cpu0 + three unpinned threads, 4 online CPUs:
        // everyone gets a core, makespan = solo time.
        let topo = {
            let mut t = Topology::new(NodeSpec::dell_r410());
            t.set_online_count(4);
            t
        };
        let mut threads = vec![ThreadSpec::new(compute(50)).pinned_to(CpuId(0))];
        threads.extend((0..3).map(|_| ThreadSpec::new(compute(50))));
        let out = run(&topo, &SchedParams::default(), &threads).unwrap();
        assert!((out.makespan.as_millis_f64() - 50.0).abs() < 1.0, "{:?}", out.makespan);
    }

    #[test]
    fn pinning_to_offline_cpu_is_rejected() {
        let mut topo = Topology::new(NodeSpec::dell_r410());
        topo.set_online_count(2);
        let threads = vec![ThreadSpec::new(compute(1)).pinned_to(CpuId(7))];
        let err = run(&topo, &SchedParams::default(), &threads).unwrap_err();
        assert_eq!(err, SchedError::PinnedOffline { thread: 0, cpu: 7 });
    }
}
