//! ASCII Gantt rendering of a scheduled run under SMM noise.
//!
//! Takes the work-time [`Trace`] recorded by
//! [`run_with_trace`](crate::scheduler::run_with_trace) and a
//! freeze schedule, and renders the **wall-time** view: per logical
//! CPU, which thread occupied it at each instant, with `#` marking the
//! node-global SMM windows. This is the picture the OS can never see —
//! every `#` column is time the kernel believes was spent by whatever
//! thread the row shows next.
//!
//! ```text
//! cpu0 |000000##0000111##111...|
//! cpu1 |222222##2222333##333...|
//!        ^ all rows freeze together
//! ```

use sim_core::{FreezeSchedule, SimDuration, SimTime, Trace, TraceKind};
use std::fmt::Write as _;

/// Render a wall-time Gantt chart of `width` columns spanning
/// `[0, wall_end)`.
///
/// Thread ids are shown base-36 (0-9 then a-z, `.` for idle, `#` for
/// SMM); ids ≥ 36 wrap.
pub fn render_gantt(
    trace: &Trace,
    schedule: &FreezeSchedule,
    wall_end: SimTime,
    width: usize,
) -> String {
    assert!(width >= 10, "gantt needs at least 10 columns");
    assert!(wall_end > SimTime::ZERO, "empty time range");

    // Collect the CPUs that ever appear, in order.
    let mut cpus: Vec<u32> = trace
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Schedule { cpu, .. } => Some(cpu),
            _ => None,
        })
        .collect();
    cpus.sort_unstable();
    cpus.dedup();

    // Per-CPU piecewise-constant assignment over *work* time.
    let mut steps: Vec<Vec<(u64, Option<u32>)>> = vec![Vec::new(); cpus.len()];
    for e in trace.events() {
        if let TraceKind::Schedule { cpu, thread } = e.kind {
            if let Ok(row) = cpus.binary_search(&cpu) {
                steps[row].push((e.time.as_nanos(), thread));
            }
        }
    }

    let lookup = |row: usize, work_ns: u64| -> Option<u32> {
        let s = &steps[row];
        match s.partition_point(|&(t, _)| t <= work_ns) {
            0 => None,
            i => s[i - 1].1,
        }
    };

    let glyph = |t: Option<u32>| -> char {
        match t {
            None => '.',
            Some(id) => char::from_digit(id % 36, 36).unwrap_or('?'),
        }
    };

    let mut out = String::new();
    let col_span = SimDuration(wall_end.as_nanos() / width as u64);
    for (row, cpu) in cpus.iter().enumerate() {
        let _ = write!(out, "cpu{cpu:<2}|");
        for c in 0..width {
            let wall = SimTime(col_span.as_nanos() * c as u64 + col_span.as_nanos() / 2);
            if schedule.is_frozen(wall) {
                out.push('#');
            } else {
                let work_ns = schedule.work_between(SimTime::ZERO, wall).as_nanos();
                out.push(glyph(lookup(row, work_ns)));
            }
        }
        out.push_str("|\n");
    }
    let _ =
        writeln!(out, "     0{:>width$}", format!("{:.2}s", wall_end.as_secs_f64()), width = width);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{run_with_trace, SchedParams};
    use crate::topology::{NodeSpec, Topology};
    use crate::workload::{Phase, ThreadProgram, ThreadSpec};
    use sim_core::{DurationModel, PeriodicFreeze, TriggerPolicy};

    fn traced_run(threads: usize, cpus: u32) -> (Trace, SimDuration) {
        let mut topo = Topology::new(NodeSpec::dell_r410());
        topo.set_online_count(cpus);
        let specs: Vec<ThreadSpec> = (0..threads)
            .map(|_| {
                ThreadSpec::new(
                    ThreadProgram::new().then(Phase::compute(SimDuration::from_millis(80))),
                )
            })
            .collect();
        let mut trace = Trace::enabled();
        let out = run_with_trace(&topo, &SchedParams::default(), &specs, &mut trace).unwrap();
        (trace, out.makespan)
    }

    #[test]
    fn rows_match_online_cpus_used() {
        let (trace, makespan) = traced_run(4, 2);
        let g = render_gantt(&trace, &FreezeSchedule::none(), SimTime::ZERO + makespan, 60);
        assert_eq!(g.matches("cpu").count(), 2, "{g}");
    }

    #[test]
    fn quiet_gantt_has_no_freeze_marks() {
        let (trace, makespan) = traced_run(2, 2);
        let g = render_gantt(&trace, &FreezeSchedule::none(), SimTime::ZERO + makespan, 60);
        assert!(!g.contains('#'), "{g}");
        assert!(g.contains('0') && g.contains('1'), "{g}");
    }

    #[test]
    fn frozen_columns_align_across_cpus() {
        let (trace, makespan) = traced_run(2, 2);
        let schedule = FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::from_millis(20),
            period: SimDuration::from_millis(40),
            durations: DurationModel::Fixed(SimDuration::from_millis(12)),
            policy: TriggerPolicy::SkipWhileFrozen,
            seed: 1,
        });
        // Wall end = advance(makespan).
        let wall_end = schedule.advance(SimTime::ZERO, makespan);
        let g = render_gantt(&trace, &schedule, wall_end, 80);
        let rows: Vec<&str> = g.lines().filter(|l| l.starts_with("cpu")).collect();
        assert_eq!(rows.len(), 2);
        let a: Vec<usize> = rows[0].match_indices('#').map(|(i, _)| i).collect();
        let b: Vec<usize> = rows[1].match_indices('#').map(|(i, _)| i).collect();
        assert!(!a.is_empty(), "no SMM columns rendered:\n{g}");
        assert_eq!(a, b, "SMM is node-global; rows must freeze together:\n{g}");
    }

    #[test]
    fn single_thread_leaves_other_cpu_idle() {
        let (trace, makespan) = traced_run(1, 2);
        let g = render_gantt(&trace, &FreezeSchedule::none(), SimTime::ZERO + makespan, 40);
        assert!(g.contains('.'), "cpu1 should be idle somewhere:\n{g}");
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn tiny_width_rejected() {
        let (trace, makespan) = traced_run(1, 1);
        let _ = render_gantt(&trace, &FreezeSchedule::none(), SimTime::ZERO + makespan, 3);
    }
}
