//! Node energy accounting under SMM noise.
//!
//! The predecessor study (Delgado & Karavanic, IISWC 2013 — reference
//! \[7\] of the reproduced paper) found that SMIs "increase energy usage":
//! SMM handlers execute flat-out with every core captive, so frozen time
//! burns near-active power while contributing nothing, and the extended
//! runtime keeps the platform out of idle longer. This module prices a
//! run with a simple three-state power model so the laboratory can
//! reproduce that qualitative claim.

use crate::executor::ExecOutcome;
use sim_core::SimDuration;

/// Average package power in each node state, in watts.
#[derive(Clone, Copy, Debug, jsonio::ToJson)]
pub struct PowerModel {
    /// Executing host work (all used cores busy).
    pub active_w: f64,
    /// Host idle (C-states).
    pub idle_w: f64,
    /// Inside SMM: the handler spins on the BSP while the other cores
    /// wait in a non-idle microcode loop — close to active power.
    pub smm_w: f64,
}

impl PowerModel {
    /// A Nehalem/Westmere-era dual-socket node (Xeon E5520/E5620 class):
    /// ~220 W active, ~95 W idle, ~200 W in SMM.
    pub fn xeon_node() -> Self {
        PowerModel { active_w: 220.0, idle_w: 95.0, smm_w: 200.0 }
    }

    /// Validate the model's ordering assumptions. Debug-only: the
    /// shipped models are compile-time literals, so a violation is a
    /// construction bug tests catch, never a runtime condition.
    pub fn validate(&self) {
        debug_assert!(self.idle_w > 0.0, "idle power must be positive");
        debug_assert!(self.active_w >= self.idle_w, "active below idle");
        debug_assert!(self.smm_w >= self.idle_w, "SMM below idle");
    }

    /// Energy in joules for an executed outcome: busy work at active
    /// power, frozen time at SMM power, and any remaining wall time
    /// (scheduling gaps) at idle power. `busy_fraction` scales between
    /// idle and active for partially loaded nodes.
    pub fn energy_joules(&self, outcome: &ExecOutcome, busy_fraction: f64) -> f64 {
        self.validate();
        assert!((0.0..=1.0).contains(&busy_fraction), "busy fraction {busy_fraction}");
        let host = outcome.wall.saturating_sub(outcome.frozen);
        let host_w = self.idle_w + (self.active_w - self.idle_w) * busy_fraction;
        host.as_secs_f64() * host_w + outcome.frozen.as_secs_f64() * self.smm_w
    }

    /// Energy for a plain duration entirely at one effective load.
    pub fn energy_for(&self, duration: SimDuration, busy_fraction: f64) -> f64 {
        self.validate();
        let w = self.idle_w + (self.active_w - self.idle_w) * busy_fraction;
        duration.as_secs_f64() * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{NodeExecutor, SmiSideEffects};
    use sim_core::{DurationModel, FreezeSchedule, PeriodicFreeze, SimTime, TriggerPolicy};

    fn run(schedule: &FreezeSchedule) -> ExecOutcome {
        NodeExecutor::new(schedule, SmiSideEffects::none(), 8, 0.5, 0.0)
            .execute(SimTime::ZERO, SimDuration::from_secs(60))
    }

    #[test]
    fn long_smis_increase_energy() {
        let quiet = run(&FreezeSchedule::none());
        let noisy = run(&FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::from_millis(500),
            period: SimDuration::from_secs(1),
            durations: DurationModel::long_smi(),
            policy: TriggerPolicy::SkipWhileFrozen,
            seed: 1,
        }));
        let pm = PowerModel::xeon_node();
        let e_quiet = pm.energy_joules(&quiet, 1.0);
        let e_noisy = pm.energy_joules(&noisy, 1.0);
        // Same useful work, ~10.5% more wall time at near-active power.
        let inflation = e_noisy / e_quiet;
        assert!((1.08..1.13).contains(&inflation), "energy inflation {inflation}");
    }

    #[test]
    fn smm_burns_more_than_idle_would() {
        // An SMI-riddled node spends its stolen time at 200 W, not 95 W:
        // compare against a hypothetical machine that idled instead.
        let noisy = run(&FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::ZERO,
            period: SimDuration::from_millis(400),
            durations: DurationModel::long_smi(),
            policy: TriggerPolicy::SkipWhileFrozen,
            seed: 2,
        }));
        let pm = PowerModel::xeon_node();
        let actual = pm.energy_joules(&noisy, 1.0);
        let if_idle = noisy.wall.saturating_sub(noisy.frozen).as_secs_f64() * pm.active_w
            + noisy.frozen.as_secs_f64() * pm.idle_w;
        assert!(actual > if_idle * 1.05, "SMM power must be visible: {actual} vs {if_idle}");
    }

    #[test]
    fn busy_fraction_interpolates() {
        let pm = PowerModel::xeon_node();
        let hour = SimDuration::from_secs(3600);
        let idle = pm.energy_for(hour, 0.0);
        let half = pm.energy_for(hour, 0.5);
        let full = pm.energy_for(hour, 1.0);
        assert!((idle - 95.0 * 3600.0).abs() < 1e-6);
        assert!((full - 220.0 * 3600.0).abs() < 1e-6);
        assert!((half - (95.0 + 62.5) * 3600.0).abs() < 1e-6);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "active below idle"))]
    fn invalid_model_is_rejected() {
        let pm = PowerModel { active_w: 50.0, idle_w: 95.0, smm_w: 200.0 };
        let _ = pm.energy_for(SimDuration::from_secs(1), 1.0);
    }
}
