//! # machine — a simulated SMP node with Hyper-Threading
//!
//! Models the paper's test machines (Dell PowerEdge R410 / Xeon E5620 for
//! the multithreaded study, Wyeast's Xeon E5520 nodes for the MPI study)
//! at the level of detail the experiments need:
//!
//! * [`topology`] — physical cores × SMT threads, Linux-style logical CPU
//!   numbering, CPU hotplug (the paper's method of emulating HTT on/off);
//! * [`sysfs`] — the textual `/sys/devices/system/cpu` interface the
//!   paper's scripts used to offline siblings;
//! * [`smt`] — the Hyper-Threading throughput model (pipeline sharing +
//!   shared-cache contention);
//! * [`workload`] / [`scheduler`] — thread programs (compute, syscalls,
//!   blocking pipes) executed under a CFS-like least-vruntime scheduler;
//! * [`executor`] — the wall-time mapping under a
//!   [`FreezeSchedule`](sim_core::FreezeSchedule), including SMM
//!   rendezvous and post-SMI cache-refill side effects.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod energy;
pub mod executor;
pub mod gantt;
pub mod scheduler;
pub mod smt;
pub mod sysfs;
pub mod topology;
pub mod workload;

pub use energy::PowerModel;
pub use executor::{ExecOutcome, NodeExecutor, SmiSideEffects, RESIDENCY_LOSS_CAP};
pub use gantt::render_gantt;
pub use scheduler::{run, run_with_trace, SchedError, SchedOutcome, SchedParams};
pub use smt::{pair_rates, ExecProfile, SmtParams};
pub use sysfs::{CpuSysfs, SysfsError};
pub use topology::{CoreId, CpuId, NodeSpec, Topology};
pub use workload::{Phase, PipeId, ThreadProgram, ThreadSpec};
