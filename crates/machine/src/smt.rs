//! The SMT (Hyper-Threading) throughput model.
//!
//! Hyper-Threading exposes two logical cores per physical core; the pair
//! shares the pipeline and the cache hierarchy (§II.B of the paper). The
//! performance consequence is workload-dependent:
//!
//! * compute-bound threads already saturate the pipeline, so a sibling
//!   only steals issue slots (Leng et al. \[4\]; Saini et al. \[5\]);
//! * stall-heavy threads leave gaps a sibling can fill — *unless* the
//!   sibling's working set evicts theirs from the shared cache
//!   (Cieslewicz \[6\]), which is exactly what the paper's CacheUnfriendly
//!   Convolve pair does.
//!
//! The model here captures both effects with two numbers per thread
//! (execution CPI and memory CPI) and one machine parameter (the cache
//! contention coefficient):
//!
//! 1. co-residency inflates each thread's memory CPI by
//!    `1 + contention · (other thread's stall fraction)`;
//! 2. pipeline demand is `u = exec_cpi / (exec_cpi + mem_cpi')`; if the
//!    pair's combined demand exceeds 1, execution cycles stretch by the
//!    demand;
//! 3. a thread's *rate* is its solo CPI over its co-resident CPI.
//!
//! Sanity anchors (tested below): a compute-bound pair runs at 0.5× each
//! (HTT neutral); a stall-heavy pair with no contention approaches 1×
//! each (HTT doubles throughput); the paper's CU pair with realistic
//! contention lands at a small net gain.

/// Execution profile of a thread for SMT purposes.
#[derive(Clone, Copy, Debug, PartialEq, jsonio::ToJson)]
pub struct ExecProfile {
    /// Cycles per instruction spent executing (pipeline occupancy).
    pub exec_cpi: f64,
    /// Additional cycles per instruction stalled on the memory system.
    pub mem_cpi: f64,
}

impl ExecProfile {
    /// Build a profile; both components must be non-negative and the
    /// total positive.
    pub fn new(exec_cpi: f64, mem_cpi: f64) -> Self {
        assert!(exec_cpi >= 0.0 && mem_cpi >= 0.0, "negative CPI");
        assert!(exec_cpi + mem_cpi > 0.0, "zero total CPI");
        ExecProfile { exec_cpi, mem_cpi }
    }

    /// Derive from a `cache-sim` memory profile: `refs_per_instruction ×
    /// (mean latency − L1 latency)` extra cycles per instruction.
    pub fn from_memory_profile(
        p: &cache_sim::MemoryProfile,
        base_cpi: f64,
        l1_latency: f64,
    ) -> Self {
        assert!(base_cpi > 0.0, "non-positive base CPI");
        let mem = p.refs_per_instruction * (p.mean_latency_cycles - l1_latency).max(0.0);
        ExecProfile::new(base_cpi, mem)
    }

    /// A fully compute-bound profile.
    pub fn compute_bound() -> Self {
        ExecProfile::new(1.0, 0.01)
    }

    /// A streaming memory-bound profile (≈70 % stall).
    pub fn memory_bound() -> Self {
        ExecProfile::new(1.0, 2.4)
    }

    /// Solo cycles per instruction.
    pub fn solo_cpi(&self) -> f64 {
        self.exec_cpi + self.mem_cpi
    }

    /// Fraction of solo time stalled on memory.
    pub fn stall_fraction(&self) -> f64 {
        self.mem_cpi / self.solo_cpi()
    }
}

/// Machine-level SMT parameters.
#[derive(Clone, Copy, Debug, PartialEq, jsonio::ToJson)]
pub struct SmtParams {
    /// How strongly a co-resident sibling's memory pressure inflates this
    /// thread's memory CPI. Calibrated so the paper's CU Convolve pair
    /// sees only a small HTT gain.
    pub contention: f64,
}

impl Default for SmtParams {
    fn default() -> Self {
        SmtParams { contention: 1.0 }
    }
}

/// Relative progress rates (fraction of solo speed) of two threads
/// co-resident on one physical core.
pub fn pair_rates(a: &ExecProfile, b: &ExecProfile, params: &SmtParams) -> (f64, f64) {
    assert!(params.contention >= 0.0, "negative contention");
    // 1. Cache contention inflates memory CPI.
    let mem_a = a.mem_cpi * (1.0 + params.contention * b.stall_fraction());
    let mem_b = b.mem_cpi * (1.0 + params.contention * a.stall_fraction());
    // 2. Pipeline demand.
    let u_a = a.exec_cpi / (a.exec_cpi + mem_a);
    let u_b = b.exec_cpi / (b.exec_cpi + mem_b);
    let demand = u_a + u_b;
    let stretch = demand.max(1.0);
    // 3. Co-resident CPIs and rates.
    let cpi_a = a.exec_cpi * stretch + mem_a;
    let cpi_b = b.exec_cpi * stretch + mem_b;
    (a.solo_cpi() / cpi_a, b.solo_cpi() / cpi_b)
}

/// Rate of a thread running alone on a physical core: always 1.
pub fn solo_rate(_p: &ExecProfile) -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_throughput(a: &ExecProfile, b: &ExecProfile, params: &SmtParams) -> f64 {
        let (ra, rb) = pair_rates(a, b, params);
        ra + rb
    }

    #[test]
    fn compute_bound_pair_is_htt_neutral() {
        let p = ExecProfile::compute_bound();
        let (ra, rb) = pair_rates(&p, &p, &SmtParams::default());
        assert!((ra - 0.5).abs() < 0.02, "rate {ra}");
        assert!((ra - rb).abs() < 1e-12);
        let tput = total_throughput(&p, &p, &SmtParams::default());
        assert!((tput - 1.0).abs() < 0.05, "total {tput}");
    }

    #[test]
    fn stall_heavy_pair_without_contention_doubles_throughput() {
        let p = ExecProfile::memory_bound();
        let none = SmtParams { contention: 0.0 };
        let tput = total_throughput(&p, &p, &none);
        assert!(tput > 1.8, "total {tput}");
    }

    #[test]
    fn contention_erodes_the_stall_filling_gain() {
        let p = ExecProfile::memory_bound();
        let tput = total_throughput(&p, &p, &SmtParams::default());
        // The paper: "Our CacheUnfriendly configuration did not benefit
        // greatly from HTT" — small gain, well below 2x.
        assert!(tput > 0.95 && tput < 1.4, "total {tput}");
    }

    #[test]
    fn asymmetric_pair_favors_the_low_demand_thread() {
        let compute = ExecProfile::compute_bound();
        let memory = ExecProfile::memory_bound();
        let (rc, rm) = pair_rates(&compute, &memory, &SmtParams::default());
        // An asymmetric pair overlaps well: both threads retain most of
        // their solo speed (the memory thread's stalls host the compute
        // thread's issue slots), so combined throughput clearly beats the
        // 0.5+0.5 of a symmetric compute-bound pair.
        assert!(rc > 0.7, "compute rate {rc}");
        assert!(rm > 0.8, "memory rate {rm}");
        assert!(rc + rm > 1.4, "combined {}", rc + rm);
    }

    #[test]
    fn rates_are_in_unit_interval() {
        let profiles = [
            ExecProfile::compute_bound(),
            ExecProfile::memory_bound(),
            ExecProfile::new(0.5, 0.5),
            ExecProfile::new(2.0, 0.1),
        ];
        for a in &profiles {
            for b in &profiles {
                let (ra, rb) = pair_rates(a, b, &SmtParams::default());
                assert!(ra > 0.0 && ra <= 1.0, "ra {ra}");
                assert!(rb > 0.0 && rb <= 1.0, "rb {rb}");
            }
        }
    }

    #[test]
    fn pair_rates_is_symmetric() {
        let a = ExecProfile::new(1.0, 0.7);
        let b = ExecProfile::new(0.8, 1.9);
        let (ra1, rb1) = pair_rates(&a, &b, &SmtParams::default());
        let (rb2, ra2) = pair_rates(&b, &a, &SmtParams::default());
        assert!((ra1 - ra2).abs() < 1e-12);
        assert!((rb1 - rb2).abs() < 1e-12);
    }

    #[test]
    fn solo_is_full_speed() {
        assert_eq!(solo_rate(&ExecProfile::memory_bound()), 1.0);
    }

    #[test]
    fn profile_constructors() {
        let p = ExecProfile::new(1.0, 3.0);
        assert!((p.stall_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(p.solo_cpi(), 4.0);
        let mp = cache_sim::MemoryProfile::memory_bound();
        let ep = ExecProfile::from_memory_profile(&mp, 1.0, 4.0);
        assert!(ep.mem_cpi > 10.0, "derived mem CPI {}", ep.mem_cpi);
    }

    #[test]
    #[should_panic(expected = "zero total CPI")]
    fn rejects_zero_profile() {
        let _ = ExecProfile::new(0.0, 0.0);
    }
}
