//! Node topology: physical cores, SMT siblings, logical CPU hotplug.
//!
//! Logical CPUs are numbered the way Linux enumerates them on the paper's
//! Xeon E5620: CPUs `0..P` are thread 0 of each physical core, CPUs
//! `P..2P` are the Hyper-Threading siblings (`cpu{i}` and `cpu{i+P}` share
//! physical core `i`). The paper's methodology — "tested 1–4 logical
//! processor cores with all HTT siblings offlined, then selectively
//! onlined the HTT siblings to test 5–8" — maps directly onto
//! [`Topology::set_online_count`].

/// Identifier of a logical CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, jsonio::ToJson)]
pub struct CpuId(pub u32);

/// Identifier of a physical core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, jsonio::ToJson)]
pub struct CoreId(pub u32);

/// Static shape of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, jsonio::ToJson)]
pub struct NodeSpec {
    /// Physical cores per node.
    pub physical_cores: u32,
    /// Hardware threads per physical core (1 = no SMT, 2 = HTT).
    pub smt_per_core: u32,
}

impl NodeSpec {
    /// The paper's Dell R410 node: one Xeon E5620 quad-core with HTT.
    pub fn dell_r410() -> Self {
        NodeSpec { physical_cores: 4, smt_per_core: 2 }
    }

    /// The paper's Wyeast cluster node: Xeon E5520 quad-core with HTT.
    pub fn wyeast() -> Self {
        NodeSpec { physical_cores: 4, smt_per_core: 2 }
    }

    /// Total logical CPUs when everything is online.
    pub fn logical_cpus(&self) -> u32 {
        self.physical_cores * self.smt_per_core
    }
}

/// Mutable topology state: which logical CPUs are online.
///
/// CPU 0 is the boot CPU and cannot be offlined, matching Linux.
#[derive(Clone, Debug)]
pub struct Topology {
    spec: NodeSpec,
    online: Vec<bool>,
}

impl Topology {
    /// A topology with every logical CPU online.
    pub fn new(spec: NodeSpec) -> Self {
        assert!(spec.physical_cores > 0, "node needs at least one core");
        assert!((1..=2).contains(&spec.smt_per_core), "smt_per_core must be 1 or 2");
        Topology { spec, online: vec![true; spec.logical_cpus() as usize] }
    }

    /// The static shape.
    pub fn spec(&self) -> NodeSpec {
        self.spec
    }

    /// Total logical CPUs present (online or not).
    pub fn present(&self) -> u32 {
        self.spec.logical_cpus()
    }

    /// The physical core a logical CPU belongs to.
    pub fn core_of(&self, cpu: CpuId) -> CoreId {
        assert!(cpu.0 < self.present(), "cpu{} not present", cpu.0);
        CoreId(cpu.0 % self.spec.physical_cores)
    }

    /// The SMT sibling of a logical CPU, if the node has HTT.
    pub fn sibling_of(&self, cpu: CpuId) -> Option<CpuId> {
        assert!(cpu.0 < self.present(), "cpu{} not present", cpu.0);
        if self.spec.smt_per_core == 1 {
            return None;
        }
        let p = self.spec.physical_cores;
        Some(if cpu.0 < p { CpuId(cpu.0 + p) } else { CpuId(cpu.0 - p) })
    }

    /// Whether a logical CPU is online. The bounds guard is debug-only:
    /// simulation-path callers (`online_cpus` and friends) iterate
    /// `0..present()`, and an out-of-range dev-code query still stops at
    /// the vector index below.
    pub fn is_online(&self, cpu: CpuId) -> bool {
        debug_assert!(cpu.0 < self.present(), "cpu{} not present", cpu.0);
        self.online[cpu.0 as usize]
    }

    /// Bring a logical CPU online.
    pub fn online(&mut self, cpu: CpuId) {
        assert!(cpu.0 < self.present(), "cpu{} not present", cpu.0);
        self.online[cpu.0 as usize] = true;
    }

    /// Take a logical CPU offline.
    ///
    /// # Panics
    /// Panics for CPU 0 (the boot CPU), as Linux refuses the same write.
    pub fn offline(&mut self, cpu: CpuId) {
        assert!(cpu.0 < self.present(), "cpu{} not present", cpu.0);
        assert!(cpu.0 != 0, "cpu0 is the boot CPU and cannot be offlined");
        self.online[cpu.0 as usize] = false;
    }

    /// Online logical CPUs, in id order.
    pub fn online_cpus(&self) -> Vec<CpuId> {
        (0..self.present()).map(CpuId).filter(|&c| self.is_online(c)).collect()
    }

    /// Number of online logical CPUs.
    pub fn online_count(&self) -> u32 {
        self.online.iter().filter(|&&o| o).count() as u32
    }

    /// Whether the sibling of `cpu` is also online (i.e. the physical core
    /// is running two hardware threads).
    pub fn sibling_online(&self, cpu: CpuId) -> bool {
        self.sibling_of(cpu).is_some_and(|s| self.is_online(s))
    }

    /// Reproduce the paper's CPU-count sweep: bring exactly `n` logical
    /// CPUs online — first one thread per physical core (1–P), then HTT
    /// siblings (P+1–2P).
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds the present CPUs.
    pub fn set_online_count(&mut self, n: u32) {
        assert!(n >= 1, "at least CPU 0 must stay online");
        assert!(n <= self.present(), "{n} exceeds present CPUs {}", self.present());
        for i in 0..self.present() {
            self.online[i as usize] = i < n;
        }
    }

    /// Emulate full HTT disable (BIOS setting on Wyeast): offline every
    /// sibling, keep one thread per core.
    pub fn disable_htt(&mut self) {
        let p = self.spec.physical_cores;
        for i in 0..self.present() {
            self.online[i as usize] = i < p;
        }
    }

    /// Bring everything online (HTT enabled).
    pub fn enable_all(&mut self) {
        self.online.fill(true);
    }

    /// Number of physical cores with at least one online thread.
    pub fn active_cores(&self) -> u32 {
        (0..self.spec.physical_cores)
            .filter(|&c| {
                (0..self.spec.smt_per_core)
                    .any(|t| self.online[(c + t * self.spec.physical_cores) as usize])
            })
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r410_shape() {
        let t = Topology::new(NodeSpec::dell_r410());
        assert_eq!(t.present(), 8);
        assert_eq!(t.online_count(), 8);
        assert_eq!(t.active_cores(), 4);
    }

    #[test]
    fn sibling_mapping_is_linux_style() {
        let t = Topology::new(NodeSpec::dell_r410());
        assert_eq!(t.sibling_of(CpuId(0)), Some(CpuId(4)));
        assert_eq!(t.sibling_of(CpuId(4)), Some(CpuId(0)));
        assert_eq!(t.sibling_of(CpuId(3)), Some(CpuId(7)));
        assert_eq!(t.core_of(CpuId(5)), CoreId(1));
    }

    #[test]
    fn no_smt_has_no_siblings() {
        let t = Topology::new(NodeSpec { physical_cores: 2, smt_per_core: 1 });
        assert_eq!(t.sibling_of(CpuId(1)), None);
        assert_eq!(t.present(), 2);
    }

    #[test]
    fn paper_sweep_onlines_cores_then_siblings() {
        let mut t = Topology::new(NodeSpec::dell_r410());
        t.set_online_count(3);
        assert_eq!(t.online_cpus(), vec![CpuId(0), CpuId(1), CpuId(2)]);
        assert_eq!(t.active_cores(), 3);
        assert!(!t.sibling_online(CpuId(0)));

        t.set_online_count(6);
        assert_eq!(t.online_count(), 6);
        // CPUs 0..6: cores 0-3 plus siblings of cores 0 and 1.
        assert!(t.sibling_online(CpuId(0)));
        assert!(t.sibling_online(CpuId(1)));
        assert!(!t.sibling_online(CpuId(2)));
        assert_eq!(t.active_cores(), 4);
    }

    #[test]
    fn disable_htt_keeps_one_thread_per_core() {
        let mut t = Topology::new(NodeSpec::dell_r410());
        t.disable_htt();
        assert_eq!(t.online_count(), 4);
        assert_eq!(t.active_cores(), 4);
        assert!(!t.is_online(CpuId(4)));
        t.enable_all();
        assert_eq!(t.online_count(), 8);
    }

    #[test]
    #[should_panic(expected = "boot CPU")]
    fn cpu0_cannot_offline() {
        let mut t = Topology::new(NodeSpec::dell_r410());
        t.offline(CpuId(0));
    }

    #[test]
    fn offline_online_roundtrip() {
        let mut t = Topology::new(NodeSpec::dell_r410());
        t.offline(CpuId(5));
        assert!(!t.is_online(CpuId(5)));
        assert!(!t.sibling_online(CpuId(1)));
        t.online(CpuId(5));
        assert!(t.sibling_online(CpuId(1)));
    }

    #[test]
    fn active_cores_counts_any_online_thread() {
        let mut t = Topology::new(NodeSpec::dell_r410());
        t.set_online_count(1);
        assert_eq!(t.active_cores(), 1);
        // Online only a sibling thread for core 2.
        t.online(CpuId(6));
        assert_eq!(t.active_cores(), 2);
    }
}
