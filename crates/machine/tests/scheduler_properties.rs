//! Property-based tests for the node scheduler: work conservation,
//! makespan bounds, determinism, and fairness.

use machine::{run, NodeSpec, Phase, SchedParams, ThreadProgram, ThreadSpec, Topology};
use quickprop::check;
use sim_core::SimDuration;

fn compute_threads(works_ms: &[u64]) -> Vec<ThreadSpec> {
    works_ms
        .iter()
        .map(|&ms| {
            ThreadSpec::new(ThreadProgram::new().then(Phase::compute(SimDuration::from_millis(ms))))
        })
        .collect()
}

#[test]
fn makespan_is_bounded_by_serial_and_ideal() {
    check("makespan_is_bounded_by_serial_and_ideal", 64, |g| {
        let works = g.vec_u64(1..12, 1..500);
        let online = g.u32(1..9);
        let mut topo = Topology::new(NodeSpec::dell_r410());
        topo.set_online_count(online);
        let out = run(&topo, &SchedParams::default(), &compute_threads(&works)).unwrap();
        let total_ms: u64 = works.iter().sum();
        let max_ms = *works.iter().max().unwrap();
        let physical = online.min(4) as f64; // SMT pairs give <= 4 cores of compute throughput
        let ideal_ms = (total_ms as f64 / physical).max(max_ms as f64);
        let makespan = out.makespan.as_millis_f64();
        // Never better than the perfect-parallel bound (compute-bound
        // threads gain nothing from SMT)...
        assert!(makespan >= ideal_ms * 0.999, "makespan {makespan} below ideal {ideal_ms}");
        // ...and never worse than fully serial (plus scheduling slop).
        assert!(
            makespan <= total_ms as f64 * 1.05 + 1.0,
            "makespan {makespan} above serial {total_ms}"
        );
    });
}

#[test]
fn executed_work_is_conserved() {
    check("executed_work_is_conserved", 64, |g| {
        let works = g.vec_u64(1..10, 1..300);
        let online = g.u32(1..9);
        let mut topo = Topology::new(NodeSpec::dell_r410());
        topo.set_online_count(online);
        let out = run(&topo, &SchedParams::default(), &compute_threads(&works)).unwrap();
        let total: u64 = works.iter().sum();
        let executed = out.total_work.as_millis_f64();
        // Compute-bound threads at rate <= 1: executed solo-equivalent
        // work equals the programmed work (within fp accumulation).
        assert!(
            (executed - total as f64).abs() < 0.01 * total as f64 + 0.1,
            "executed {executed} vs programmed {total}"
        );
    });
}

#[test]
fn scheduler_is_deterministic() {
    check("scheduler_is_deterministic", 64, |g| {
        let works = g.vec_u64(2..8, 1..200);
        let online = g.u32(1..9);
        let mut topo = Topology::new(NodeSpec::dell_r410());
        topo.set_online_count(online);
        let a = run(&topo, &SchedParams::default(), &compute_threads(&works)).unwrap();
        let b = run(&topo, &SchedParams::default(), &compute_threads(&works)).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.finish_times, b.finish_times);
        assert_eq!(a.context_switches, b.context_switches);
    });
}

#[test]
fn more_cpus_never_slow_compute_work() {
    check("more_cpus_never_slow_compute_work", 64, |g| {
        let works = g.vec_u64(1..10, 1..300);
        // Onlining additional physical cores (1->4) must not hurt.
        let mut prev = f64::INFINITY;
        for online in [1u32, 2, 3, 4] {
            let mut topo = Topology::new(NodeSpec::dell_r410());
            topo.set_online_count(online);
            let out = run(&topo, &SchedParams::default(), &compute_threads(&works)).unwrap();
            let ms = out.makespan.as_millis_f64();
            assert!(ms <= prev * 1.02 + 0.1, "online {online}: {ms} vs previous {prev}");
            prev = ms;
        }
    });
}

#[test]
fn equal_threads_finish_nearly_together() {
    check("equal_threads_finish_nearly_together", 64, |g| {
        // vruntime fairness: identical threads on one CPU finish within
        // one round-robin rotation (n quanta) of each other — no thread
        // is starved.
        let n = g.u32(2..8);
        let work = g.u64(50..300);
        let mut topo = Topology::new(NodeSpec::dell_r410());
        topo.set_online_count(1);
        let works = vec![work; n as usize];
        let out = run(&topo, &SchedParams::default(), &compute_threads(&works)).unwrap();
        let first = out.finish_times.iter().min().unwrap().as_millis_f64();
        let last = out.finish_times.iter().max().unwrap().as_millis_f64();
        let quantum_ms = 10.0;
        assert!(
            last - first <= n as f64 * quantum_ms + 0.5,
            "spread {} ms with n={n}",
            last - first
        );
    });
}
