//! The UnixBench subset (§IV.C): test definitions, real work units, and
//! the index-score arithmetic.
//!
//! UnixBench rates each test against a fixed baseline machine (George,
//! the SPARCstation 20-61 whose scores define index 10) and combines
//! per-test scores with a geometric mean. The paper runs five tests —
//! Dhrystone, Whetstone, pipe throughput, pipe-based context switching
//! and syscall overhead — in the default two-pass configuration (one
//! copy, then one copy per core).
//!
//! The work units here are real (the string and floating-point kernels
//! actually execute and are checked for correctness); the *timed* runs in
//! [`crate::ubench_model`] use the simulated machine so SMIs can be
//! injected deterministically.

use sim_core::stats::geometric_mean;

/// The five benchmark tests the paper selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, jsonio::ToJson)]
pub enum UbTest {
    /// String manipulation (Dhrystone 2).
    Dhrystone,
    /// Floating-point transcendental loop (Whetstone).
    Whetstone,
    /// Single-process pipe read/write throughput.
    PipeThroughput,
    /// Two processes passing a token through pipes.
    PipeContextSwitch,
    /// Minimal system-call entry/exit cost.
    SyscallOverhead,
}

impl UbTest {
    /// All five tests, in UnixBench report order.
    pub const ALL: [UbTest; 5] = [
        UbTest::Dhrystone,
        UbTest::Whetstone,
        UbTest::PipeThroughput,
        UbTest::PipeContextSwitch,
        UbTest::SyscallOverhead,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            UbTest::Dhrystone => "Dhrystone 2 using register variables",
            UbTest::Whetstone => "Double-Precision Whetstone",
            UbTest::PipeThroughput => "Pipe Throughput",
            UbTest::PipeContextSwitch => "Pipe-based Context Switching",
            UbTest::SyscallOverhead => "System Call Overhead",
        }
    }

    /// The George baseline in the test's native unit (lps, or MWIPS for
    /// Whetstone) — the denominators UnixBench ships with.
    pub fn baseline(&self) -> f64 {
        match self {
            UbTest::Dhrystone => 116_700.0,
            UbTest::Whetstone => 55.0,
            UbTest::PipeThroughput => 12_440.0,
            UbTest::PipeContextSwitch => 4_000.0,
            UbTest::SyscallOverhead => 15_000.0,
        }
    }

    /// UnixBench's score: `result / baseline * 10`.
    pub fn score(&self, result: f64) -> f64 {
        assert!(result >= 0.0, "negative benchmark result");
        result / self.baseline() * 10.0
    }
}

/// Combine per-test scores into a UnixBench index (geometric mean).
pub fn index(scores: &[f64]) -> f64 {
    geometric_mean(scores)
}

// ---------------------------------------------------------------------
// Real work units.
// ---------------------------------------------------------------------

/// One Dhrystone-flavoured unit: the string copy / compare / locate mix
/// of Dhrystone 2's `Proc_*` string work. Returns a checksum so the
/// optimizer cannot delete it and tests can pin behaviour.
pub fn dhrystone_unit(iteration: u64) -> u64 {
    let src = format!("DHRYSTONE PROGRAM, {} STRING", iteration % 10);
    let mut dst = String::with_capacity(64);
    dst.push_str(&src);
    dst.push_str(", 2'ND STRING");
    let cmp = dst.as_bytes().iter().zip(src.as_bytes()).filter(|(a, b)| a == b).count();
    let located = dst.find("2'ND").map(|p| p as u64).unwrap_or(0);
    cmp as u64 + located + dst.len() as u64
}

/// One Whetstone-flavoured unit: the transcendental module (sin, cos,
/// atan, sqrt, exp, log) iterated a fixed number of times. Returns the
/// accumulated value for verification.
pub fn whetstone_unit() -> f64 {
    let mut x = 0.5f64;
    let mut y = 0.5f64;
    for _ in 0..10 {
        x = (x.sin().atan() + y.cos()).abs().sqrt().max(1e-9);
        y = (x.exp().ln() + 1.0) / 2.2;
    }
    x + y
}

/// One syscall-overhead unit: a cheap real system call (clock read), the
/// same family UnixBench's `getpid`-loop exercises.
pub fn syscall_unit() -> u64 {
    // smi-lint: allow(wall-clock): the whole point of this unit is to make a
    // real system call; the returned nanoseconds feed wrapping_add sinks and
    // never influence a simulated result.
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_scale_linearly_with_results() {
        let t = UbTest::Dhrystone;
        assert!((t.score(116_700.0) - 10.0).abs() < 1e-9);
        assert!((t.score(1_167_000.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn baselines_are_the_george_values() {
        assert_eq!(UbTest::PipeContextSwitch.baseline(), 4000.0);
        assert_eq!(UbTest::Whetstone.baseline(), 55.0);
    }

    #[test]
    fn index_is_geometric_mean() {
        let idx = index(&[100.0, 400.0]);
        assert!((idx - 200.0).abs() < 1e-9);
    }

    #[test]
    fn dhrystone_unit_is_deterministic_and_varies() {
        assert_eq!(dhrystone_unit(3), dhrystone_unit(3));
        // Different iterations use different strings but similar work.
        let a = dhrystone_unit(1);
        let b = dhrystone_unit(2);
        assert!(a > 0 && b > 0);
    }

    #[test]
    fn whetstone_unit_converges_deterministically() {
        let v = whetstone_unit();
        assert_eq!(v.to_bits(), whetstone_unit().to_bits());
        assert!(v.is_finite() && v > 0.0, "value {v}");
    }

    #[test]
    fn syscall_unit_returns_without_panicking() {
        // Smoke: the unit performs a real clock syscall.
        let _ = syscall_unit();
    }

    #[test]
    fn all_tests_have_distinct_names() {
        let names: std::collections::HashSet<_> = UbTest::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
