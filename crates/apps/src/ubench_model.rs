//! Simulated UnixBench runs (Figure 2).
//!
//! Each test is expressed as thread programs for the `machine` scheduler
//! (Dhrystone/Whetstone/syscalls as compute streams with the appropriate
//! unit cost; the pipe tests as real blocking pipe programs), run once to
//! measure the *work-time* rate, then converted to a wall-clock result
//! over the benchmark's fixed duration by subtracting SMM residency and
//! per-window overheads. Higher SMI frequency ⇒ less usable work in the
//! window ⇒ lower loops-per-second ⇒ lower index, which is exactly the
//! quantity Figure 2 plots.

use crate::unixbench::{index, UbTest};
use machine::{
    scheduler, NodeSpec, Phase, PipeId, SchedParams, SmiSideEffects, ThreadProgram, ThreadSpec,
    Topology,
};
use sim_core::{FreezeSchedule, SimDuration, SimTime};

/// Unit costs on the simulated E5620 (chosen to land era-plausible
/// UnixBench results: a few-hundred index per test single-copy).
#[derive(Clone, Copy, Debug, jsonio::ToJson)]
pub struct UbCosts {
    /// One Dhrystone loop.
    pub dhrystone: SimDuration,
    /// One million Whetstone instructions (1 MWIPS-unit).
    pub whetstone_mwi: SimDuration,
    /// Payload of one pipe-throughput write/read (bytes).
    pub pipe_bytes: u64,
    /// One minimal system call.
    pub syscall: SimDuration,
}

impl Default for UbCosts {
    fn default() -> Self {
        UbCosts {
            dhrystone: SimDuration::from_nanos(110),
            whetstone_mwi: SimDuration::from_micros(650),
            pipe_bytes: 512,
            syscall: SimDuration::from_nanos(320),
        }
    }
}

impl UbCosts {
    /// Calibrate the compute-unit costs by timing the *real* work units
    /// from [`crate::unixbench`] on the host running this simulation.
    /// Pipe costs keep their defaults (the simulator's pipes are modeled
    /// at the scheduler level). Useful for comparing the simulated E5620
    /// against whatever machine you are on; experiments use
    /// [`UbCosts::default`] for reproducibility.
    pub fn calibrate_real() -> UbCosts {
        use crate::unixbench::{dhrystone_unit, syscall_unit, whetstone_unit};
        use std::time::Instant;

        fn time_per_unit(mut f: impl FnMut(u64) -> u64, iters: u64) -> SimDuration {
            // Warm up, then measure.
            let mut acc = 0u64;
            for i in 0..iters / 10 {
                acc = acc.wrapping_add(f(i));
            }
            // smi-lint: allow(wall-clock): calibrate_real is an explicitly
            // host-dependent utility (doc above); experiments never call it
            // and always use UbCosts::default for reproducibility.
            let start = Instant::now();
            for i in 0..iters {
                acc = acc.wrapping_add(f(i));
            }
            let elapsed = start.elapsed();
            std::hint::black_box(acc);
            SimDuration::from_nanos((elapsed.as_nanos() as u64 / iters).max(1))
        }

        let dhrystone = time_per_unit(dhrystone_unit, 50_000);
        // One whetstone_unit is ~60 transcendental ops; scale to the
        // million-instruction MWIPS unit (~16.7k units).
        let one_unit = time_per_unit(|_| whetstone_unit().to_bits(), 20_000);
        let whetstone_mwi = one_unit * 16_700;
        let syscall = time_per_unit(|_| syscall_unit(), 100_000);
        UbCosts { dhrystone, whetstone_mwi, syscall, ..UbCosts::default() }
    }
}

/// Wall duration of each timed test (UnixBench uses 10-second samples).
pub const TEST_DURATION: SimDuration = SimDuration(10_000_000_000);

/// Measure a test's aggregate work-time rate (units per second of node
/// work time) with `copies` concurrent copies on the topology.
pub fn work_rate(test: UbTest, copies: u32, topo: &Topology, costs: &UbCosts) -> f64 {
    assert!(copies >= 1, "at least one copy");
    let params = SchedParams::default();
    // Enough units that scheduling effects average out, few enough that
    // the simulation stays fast.
    let units: u64 = match test {
        UbTest::Dhrystone | UbTest::SyscallOverhead => 200_000,
        UbTest::Whetstone => 2_000,
        UbTest::PipeThroughput => 2_000,
        UbTest::PipeContextSwitch => 1_000,
    };
    let threads: Vec<ThreadSpec> = match test {
        UbTest::Dhrystone => (0..copies)
            .map(|_| {
                ThreadSpec::new(ThreadProgram::new().then(Phase::compute(costs.dhrystone * units)))
            })
            .collect(),
        UbTest::Whetstone => (0..copies)
            .map(|_| {
                ThreadSpec::new(
                    ThreadProgram::new().then(Phase::compute(costs.whetstone_mwi * units)),
                )
            })
            .collect(),
        UbTest::SyscallOverhead => (0..copies)
            .map(|_| {
                ThreadSpec::new(
                    ThreadProgram::new()
                        .then(Phase::Syscalls { count: units, each: costs.syscall }),
                )
            })
            .collect(),
        UbTest::PipeThroughput => (0..copies)
            .map(|c| {
                // One process writing then reading its own pipe.
                let pipe = PipeId(c);
                let mut prog = ThreadProgram::new();
                for _ in 0..units {
                    prog = prog
                        .then(Phase::PipeWrite { pipe, bytes: costs.pipe_bytes })
                        .then(Phase::PipeRead { pipe, bytes: costs.pipe_bytes });
                }
                ThreadSpec::new(prog)
            })
            .collect(),
        UbTest::PipeContextSwitch => (0..copies)
            .flat_map(|c| {
                // Two processes ping-ponging a token through two pipes.
                let a = PipeId(2 * c);
                let b = PipeId(2 * c + 1);
                let mut pa = ThreadProgram::new();
                let mut pb = ThreadProgram::new();
                for _ in 0..units {
                    pa = pa
                        .then(Phase::PipeWrite { pipe: a, bytes: 4 })
                        .then(Phase::PipeRead { pipe: b, bytes: 4 });
                    pb = pb
                        .then(Phase::PipeRead { pipe: a, bytes: 4 })
                        .then(Phase::PipeWrite { pipe: b, bytes: 4 });
                }
                [ThreadSpec::new(pa), ThreadSpec::new(pb)]
            })
            .collect(),
    };
    let out = scheduler::run(topo, &params, &threads)
        // smi-lint: allow(no-panic): the pipe programs built above strictly
        // alternate write/read in matched pairs, so the scheduler cannot
        // deadlock.
        .expect("unixbench programs are deadlock-free");
    let total_units = units * copies as u64;
    total_units as f64 / out.makespan.as_secs_f64()
}

/// Usable work seconds within a wall window of `duration` under the
/// schedule: wall minus residency minus per-window overheads.
pub fn usable_work_seconds(
    schedule: &FreezeSchedule,
    effects: &SmiSideEffects,
    online_cpus: u32,
    memory_intensity: f64,
    duration: SimDuration,
) -> f64 {
    let end = SimTime::ZERO + duration;
    let frozen = schedule.frozen_between(SimTime::ZERO, end);
    let windows = schedule.count_between(SimTime::ZERO, end) as u64;
    let per_window = effects.per_window_cost(online_cpus, memory_intensity);
    let unfrozen = duration.saturating_sub(frozen);
    let residency_loss =
        frozen.mul_f64(effects.per_frozen_fraction(0.0)).min(unfrozen.mul_f64(effects.loss_cap));
    let overhead = per_window * windows + residency_loss;
    (duration.as_secs_f64() - frozen.as_secs_f64() - overhead.as_secs_f64()).max(0.0)
}

/// One test's measured result in its native unit (lps / MWIPS) over the
/// wall window.
pub fn measure(
    test: UbTest,
    copies: u32,
    topo: &Topology,
    costs: &UbCosts,
    schedule: &FreezeSchedule,
    effects: &SmiSideEffects,
) -> f64 {
    let rate = work_rate(test, copies, topo, costs);
    let usable = usable_work_seconds(schedule, effects, topo.online_count(), 0.4, TEST_DURATION);
    let units = rate * usable;
    let native = units / TEST_DURATION.as_secs_f64();
    match test {
        // Whetstone reports MWIPS; our unit is one MWI.
        UbTest::Whetstone => native,
        _ => native,
    }
}

/// Full two-pass report for one machine configuration.
#[derive(Clone, Debug, jsonio::ToJson)]
pub struct UnixBenchReport {
    /// Per-test single-copy scores.
    pub single: Vec<(UbTest, f64)>,
    /// Per-test N-copy scores (one per online CPU).
    pub multi: Vec<(UbTest, f64)>,
    /// Index over the single-copy pass.
    pub single_index: f64,
    /// Index over the multi-copy pass.
    pub multi_index: f64,
    /// Combined index over both passes (the paper's "total index score").
    pub total_index: f64,
}

/// Run the paper's five-test suite on `online_cpus` logical CPUs under
/// the given freeze schedule.
pub fn run_suite(
    online_cpus: u32,
    schedule: &FreezeSchedule,
    effects: &SmiSideEffects,
    costs: &UbCosts,
) -> UnixBenchReport {
    let mut topo = Topology::new(NodeSpec::dell_r410());
    topo.set_online_count(online_cpus);
    let copies = online_cpus;
    let mut single = Vec::new();
    let mut multi = Vec::new();
    for test in UbTest::ALL {
        let s = test.score(measure(test, 1, &topo, costs, schedule, effects));
        let m = test.score(measure(test, copies, &topo, costs, schedule, effects));
        single.push((test, s));
        multi.push((test, m));
    }
    let single_scores: Vec<f64> = single.iter().map(|&(_, s)| s).collect();
    let multi_scores: Vec<f64> = multi.iter().map(|&(_, s)| s).collect();
    let all: Vec<f64> = single_scores.iter().chain(&multi_scores).copied().collect();
    UnixBenchReport {
        single_index: index(&single_scores),
        multi_index: index(&multi_scores),
        total_index: index(&all),
        single,
        multi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{DurationModel, PeriodicFreeze, TriggerPolicy};

    fn quiet() -> FreezeSchedule {
        FreezeSchedule::none()
    }

    fn long_every(ms: u64) -> FreezeSchedule {
        FreezeSchedule::periodic(PeriodicFreeze {
            first_trigger: SimTime::from_millis(ms / 3 + 1),
            period: SimDuration::from_millis(ms),
            durations: DurationModel::long_smi(),
            policy: TriggerPolicy::SkipWhileFrozen,
            seed: 5,
        })
    }

    #[test]
    fn quiet_suite_produces_plausible_index() {
        let report = run_suite(4, &quiet(), &SmiSideEffects::none(), &UbCosts::default());
        assert!((200.0..4000.0).contains(&report.total_index), "index {}", report.total_index);
        // Multi-copy on 4 cores beats single-copy.
        assert!(report.multi_index > report.single_index * 2.0);
    }

    #[test]
    fn dhrystone_rate_scales_with_copies() {
        let mut topo = Topology::new(NodeSpec::dell_r410());
        topo.set_online_count(4);
        let costs = UbCosts::default();
        let r1 = work_rate(UbTest::Dhrystone, 1, &topo, &costs);
        let r4 = work_rate(UbTest::Dhrystone, 4, &topo, &costs);
        assert!((r4 / r1 - 4.0).abs() < 0.2, "scaling {}", r4 / r1);
    }

    #[test]
    fn htt_helps_the_suite() {
        // Figure 2: "The benchmark shows performance gains from HTT."
        let costs = UbCosts::default();
        let four = run_suite(4, &quiet(), &SmiSideEffects::none(), &costs);
        let eight = run_suite(8, &quiet(), &SmiSideEffects::none(), &costs);
        assert!(
            eight.total_index > four.total_index,
            "8-cpu {} vs 4-cpu {}",
            eight.total_index,
            four.total_index
        );
    }

    #[test]
    fn long_smis_below_600ms_hit_the_score_hard() {
        let costs = UbCosts::default();
        let base = run_suite(4, &quiet(), &SmiSideEffects::none(), &costs).total_index;
        let fx = SmiSideEffects::default();
        let slow_1600 = run_suite(4, &long_every(1600), &fx, &costs).total_index;
        let slow_600 = run_suite(4, &long_every(600), &fx, &costs).total_index;
        let slow_100 = run_suite(4, &long_every(100), &fx, &costs).total_index;
        assert!(slow_1600 > 0.88 * base, "1600ms {} vs base {}", slow_1600, base);
        assert!(slow_600 < slow_1600);
        // With skip-while-frozen triggering, a 100 ms interval and
        // 100-110 ms residency give an effective ~200 ms period: a bit
        // over half of all wall time is in SMM.
        assert!(
            slow_100 < 0.55 * base,
            "100ms interval should devastate the score: {slow_100} vs {base}"
        );
    }

    #[test]
    fn usable_work_is_full_window_when_quiet() {
        let w = usable_work_seconds(&quiet(), &SmiSideEffects::none(), 4, 0.5, TEST_DURATION);
        assert!((w - 10.0).abs() < 1e-9);
    }

    #[test]
    fn usable_work_decreases_with_frequency() {
        let fx = SmiSideEffects::default();
        let w600 = usable_work_seconds(&long_every(600), &fx, 4, 0.5, TEST_DURATION);
        let w100 = usable_work_seconds(&long_every(100), &fx, 4, 0.5, TEST_DURATION);
        assert!(w100 < w600);
        assert!(w600 < 10.0);
        assert!(w100 > 0.0);
    }

    #[test]
    fn real_calibration_produces_sane_costs() {
        let costs = UbCosts::calibrate_real();
        // Any machine that can run this test does a dhrystone-ish string
        // unit in 10ns..100us and a clock syscall in 5ns..50us.
        let d = costs.dhrystone.as_nanos();
        let s = costs.syscall.as_nanos();
        assert!((10..100_000).contains(&d), "dhrystone unit {d} ns");
        assert!((5..50_000).contains(&s), "syscall unit {s} ns");
        assert!(costs.whetstone_mwi > costs.dhrystone);
        // And the suite still runs with host-calibrated costs.
        let report = run_suite(2, &quiet(), &SmiSideEffects::none(), &costs);
        assert!(report.total_index > 0.0);
    }

    #[test]
    fn pipe_context_switch_is_the_slowest_per_unit() {
        let mut topo = Topology::new(NodeSpec::dell_r410());
        topo.set_online_count(4);
        let costs = UbCosts::default();
        let ctx = work_rate(UbTest::PipeContextSwitch, 1, &topo, &costs);
        let thr = work_rate(UbTest::PipeThroughput, 1, &topo, &costs);
        assert!(ctx < thr, "context switching {ctx} should be slower than throughput {thr}");
    }
}
