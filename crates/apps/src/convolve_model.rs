//! The Convolve experiment model (Figure 1).
//!
//! The paper runs Convolve in two configurations chosen with cachegrind —
//! CacheFriendly (≈1 % misses: tiny 0.5-megapixel image, 4×4 subimages,
//! large 61×61 kernel, so the working set lives in cache) and
//! CacheUnfriendly (≈70 % misses: 16-megapixel image, 1-megapixel
//! subimages, 3×3 kernel, so every window read walks far-apart rows) —
//! and sweeps the SMI interval (50–1500 ms) and the online logical CPU
//! count (1–8) on a quad-core HTT Xeon E5620.
//!
//! Here each configuration's memory character is *measured* by running a
//! representative slice of its real access pattern through `cache-sim`
//! (the same methodology, with our simulator standing in for cachegrind),
//! converted to an [`ExecProfile`], and executed as 24 threads on the
//! `machine` scheduler under a freeze schedule.

use cache_sim::{Hierarchy, HierarchyConfig, MemoryProfile};
use machine::{
    scheduler, NodeExecutor, Phase, SchedParams, SmiSideEffects, ThreadProgram, ThreadSpec,
    Topology,
};
use machine::{ExecProfile, NodeSpec};
use sim_core::{FreezeSchedule, SimDuration, SimRng, SimTime};

/// The paper's two Convolve configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, jsonio::ToJson)]
pub enum ConvolveConfig {
    /// ≈1 % cache misses: 0.5 MP image, 4×4 subimages, 61×61 kernel.
    CacheFriendly,
    /// ≈70 % cache misses: 16 MP image, 1 MP subimages, 3×3 kernel.
    CacheUnfriendly,
}

impl ConvolveConfig {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ConvolveConfig::CacheFriendly => "CacheFriendly",
            ConvolveConfig::CacheUnfriendly => "CacheUnfriendly",
        }
    }

    /// The paper's parameter table: `(image_pixels, subimage_pixels,
    /// kernel_side)`.
    pub fn parameters(&self) -> (u64, u64, u32) {
        match self {
            ConvolveConfig::CacheFriendly => (500_000, 16, 61),
            ConvolveConfig::CacheUnfriendly => (16_000_000, 1_000_000, 3),
        }
    }

    /// A representative slice of the configuration's memory access
    /// stream (addresses in bytes, 8-byte pixels). CF re-reads a tiny
    /// window working set; CU walks a 3×3 window down the columns of an
    /// image whose rows are far larger than any cache level — the access
    /// order the paper's CU parameters imply once a subimage row no
    /// longer fits.
    pub fn access_stream(&self) -> Vec<u64> {
        const ELEM: u64 = 8;
        match self {
            ConvolveConfig::CacheFriendly => {
                // 4x4 output tile, 61x61 kernel: every output pixel reads
                // a 64x64-ish neighbourhood that fits in L1/L2 and is
                // reused 16 times per tile. Model: repeated row-major
                // passes over a 64x64 window (32 KiB).
                let mut v = Vec::new();
                for _pass in 0..16 {
                    for r in 0..64u64 {
                        for c in 0..64u64 {
                            v.push((r * 64 + c) * ELEM);
                        }
                    }
                }
                v
            }
            ConvolveConfig::CacheUnfriendly => {
                // The CU mechanism: sixteen threads each walk a 3x3
                // window down their 1-megapixel subimage. Rows of a
                // 4096-pixel-wide image of 8-byte elements are 32 KiB
                // apart — exactly the L1 size — so every row of every
                // window maps to the *same* L1 set, and the 16 threads'
                // interleaved references (SMT and multicore interleaving
                // on the shared L2/L3) keep evicting each other: 8 ways
                // cannot hold 48 contending lines. Kernel weights are
                // partially register-hoisted (a handful of cached refs
                // per window); everything else misses.
                let row_stride = 32 * 1024u64; // 4096 px x 8 B
                let threads = 16u64;
                let sub_base = |t: u64| t * (8 << 20); // 8 MiB subimages
                let ker_base = 1u64 << 36;
                let mut v = Vec::new();
                for r in 0..256u64 {
                    // One window row-reference per thread per turn, fine
                    // interleaving across threads.
                    for u in 0..3u64 {
                        for ww in 0..3u64 {
                            for t in 0..threads {
                                v.push(sub_base(t) + (r + u) * row_stride + ww * ELEM);
                            }
                        }
                    }
                    for t in 0..threads {
                        // Output write (aliases like the reads) plus the
                        // few non-hoisted kernel reads.
                        v.push(sub_base(t) + (1 << 22) + r * row_stride);
                        for k in 0..4u64 {
                            v.push(ker_base + t * 4096 + k * ELEM);
                        }
                    }
                }
                v
            }
        }
    }

    /// Measure the configuration's memory profile on the E5620 hierarchy
    /// (the cachegrind step of the paper's methodology). The stream is
    /// played once to warm the hierarchy, then measured in steady state —
    /// the paper's long runs make cold misses invisible.
    pub fn memory_profile(&self) -> MemoryProfile {
        let mut h = Hierarchy::new(HierarchyConfig::xeon_e5620());
        let stream = self.access_stream();
        let refs = stream.len() as u64;
        h.run(stream.iter().copied());
        h.reset_counters();
        h.run(stream);
        // Roughly two arithmetic instructions per reference in the MAC loop.
        MemoryProfile::from_hierarchy(&h, refs * 2)
    }

    /// The SMT execution profile derived from the measured memory profile.
    pub fn exec_profile(&self) -> ExecProfile {
        ExecProfile::from_memory_profile(&self.memory_profile(), 1.0, 4.0)
    }

    /// Memory intensity for SMI refill scaling.
    pub fn memory_intensity(&self) -> f64 {
        match self {
            ConvolveConfig::CacheFriendly => 0.05,
            ConvolveConfig::CacheUnfriendly => 0.9,
        }
    }

    /// Total solo compute (one CPU, no noise), calibrated so a
    /// single-CPU run takes about a minute — long enough for the paper's
    /// 50–1500 ms SMI intervals to show their statistics.
    pub fn total_solo_seconds(&self) -> f64 {
        60.0
    }
}

/// Parameters of one Figure-1 run.
#[derive(Clone, Debug)]
pub struct ConvolveRun {
    /// Which configuration.
    pub config: ConvolveConfig,
    /// Online logical CPUs (1–8 on the R410).
    pub online_cpus: u32,
    /// SMI freeze schedule for the node.
    pub schedule: FreezeSchedule,
    /// SMI side effects.
    pub effects: SmiSideEffects,
    /// Worker threads (the paper limits concurrency to 24).
    pub threads: u32,
}

/// Outcome of one run.
#[derive(Clone, Debug, jsonio::ToJson)]
pub struct ConvolveOutcome {
    /// Wall-clock execution time.
    pub wall_seconds: f64,
    /// Work-time makespan (no freezes).
    pub work_seconds: f64,
    /// SMM windows hit during the run.
    pub windows: usize,
}

/// Execute one Convolve run: 24 threads on the scheduler (work time),
/// then the wall-time mapping through the freeze schedule.
pub fn run_convolve(run: &ConvolveRun, rng: &mut SimRng) -> ConvolveOutcome {
    assert!((1..=8).contains(&run.online_cpus), "R410 has 1..=8 logical CPUs");
    assert!(run.threads >= 1);
    let mut topo = Topology::new(NodeSpec::dell_r410());
    topo.set_online_count(run.online_cpus);

    let profile = run.config.exec_profile();
    let per_thread = run.config.total_solo_seconds() / run.threads as f64;
    let spawn_cost = SimDuration::from_micros(30);
    let threads: Vec<ThreadSpec> = (0..run.threads)
        .map(|i| {
            let jitter = rng.jitter(0.006);
            let work = SimDuration::from_secs_f64(per_thread * jitter);
            ThreadSpec::new(ThreadProgram::new().then(Phase::Compute { work, profile }))
                .delayed(spawn_cost * i as u64)
        })
        .collect();

    let sched = scheduler::run(&topo, &SchedParams::default(), &threads)
        // smi-lint: allow(no-panic): pure compute phases never block on pipes,
        // so the scheduler cannot report a deadlock for this program.
        .expect("convolve threads cannot deadlock");
    let executor = NodeExecutor::new(
        &run.schedule,
        run.effects,
        run.online_cpus,
        run.config.memory_intensity(),
        0.0,
    );
    let out = executor.execute(SimTime::ZERO, sched.makespan);
    ConvolveOutcome {
        wall_seconds: out.wall.as_secs_f64(),
        work_seconds: sched.makespan.as_secs_f64(),
        windows: out.windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{classify, CacheBehavior};
    use sim_core::{DurationModel, PeriodicFreeze};

    #[test]
    fn cachegrind_step_classifies_both_configs() {
        let cf = ConvolveConfig::CacheFriendly.memory_profile();
        let cu = ConvolveConfig::CacheUnfriendly.memory_profile();
        assert_eq!(classify(cf.l1_miss_ratio), CacheBehavior::Friendly, "CF: {cf:?}");
        assert_eq!(classify(cu.l1_miss_ratio), CacheBehavior::Unfriendly, "CU: {cu:?}");
    }

    #[test]
    fn cu_profile_stalls_much_more_than_cf() {
        let cf = ConvolveConfig::CacheFriendly.exec_profile();
        let cu = ConvolveConfig::CacheUnfriendly.exec_profile();
        assert!(cf.stall_fraction() < 0.1, "CF stall {}", cf.stall_fraction());
        assert!(cu.stall_fraction() > 0.6, "CU stall {}", cu.stall_fraction());
    }

    fn quiet_run(config: ConvolveConfig, cpus: u32) -> ConvolveOutcome {
        let run = ConvolveRun {
            config,
            online_cpus: cpus,
            schedule: FreezeSchedule::none(),
            effects: SmiSideEffects::none(),
            threads: 24,
        };
        run_convolve(&run, &mut SimRng::new(42))
    }

    #[test]
    fn scales_with_physical_cores() {
        let one = quiet_run(ConvolveConfig::CacheFriendly, 1);
        let four = quiet_run(ConvolveConfig::CacheFriendly, 4);
        let speedup = one.wall_seconds / four.wall_seconds;
        assert!((3.5..4.3).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn cf_gains_little_from_htt() {
        // The paper: "The CacheFriendly configuration shows minimal
        // benefits from HTT" (compute-bound threads saturate the pipeline).
        let four = quiet_run(ConvolveConfig::CacheFriendly, 4);
        let eight = quiet_run(ConvolveConfig::CacheFriendly, 8);
        let gain = four.wall_seconds / eight.wall_seconds;
        assert!((0.9..1.15).contains(&gain), "HTT gain {gain}");
    }

    #[test]
    fn cu_gains_only_modestly_from_htt() {
        // "Our CacheUnfriendly configuration did not benefit greatly from
        // HTT" — contention on the shared cache eats the latency-filling.
        let four = quiet_run(ConvolveConfig::CacheUnfriendly, 4);
        let eight = quiet_run(ConvolveConfig::CacheUnfriendly, 8);
        let gain = four.wall_seconds / eight.wall_seconds;
        assert!((0.95..1.45).contains(&gain), "HTT gain {gain}");
    }

    fn noisy_run(
        config: ConvolveConfig,
        cpus: u32,
        interval_ms: u64,
        seed: u64,
    ) -> ConvolveOutcome {
        let mut rng = SimRng::new(seed);
        let run = ConvolveRun {
            config,
            online_cpus: cpus,
            schedule: FreezeSchedule::periodic(PeriodicFreeze::with_random_phase(
                SimDuration::from_millis(interval_ms),
                DurationModel::long_smi(),
                &mut rng,
            )),
            effects: SmiSideEffects::default(),
            threads: 24,
        };
        run_convolve(&run, &mut rng)
    }

    #[test]
    fn impact_is_minimal_above_600ms_and_dramatic_below() {
        // Figure 1 left panels: "minimal or no impact ... up to
        // approximately 600 ms intervals. From this point up to the
        // highest frequency (50 ms intervals), we see a dramatic impact."
        let base = quiet_run(ConvolveConfig::CacheUnfriendly, 4).wall_seconds;
        let slow_1500 = noisy_run(ConvolveConfig::CacheUnfriendly, 4, 1500, 1).wall_seconds;
        let slow_600 = noisy_run(ConvolveConfig::CacheUnfriendly, 4, 600, 2).wall_seconds;
        let slow_50 = noisy_run(ConvolveConfig::CacheUnfriendly, 4, 50, 3).wall_seconds;
        let r1500 = slow_1500 / base;
        let r600 = slow_600 / base;
        let r50 = slow_50 / base;
        assert!(r1500 < 1.12, "1500ms interval slowdown {r1500}");
        assert!((1.1..1.35).contains(&r600), "600ms interval slowdown {r600}");
        assert!(r50 > 2.5, "50ms interval slowdown {r50}");
        assert!(r50 > r600 && r600 > r1500);
    }

    #[test]
    fn window_count_matches_interval() {
        let out = noisy_run(ConvolveConfig::CacheFriendly, 8, 1000, 7);
        // Roughly one window per second of wall time.
        let per_sec = out.windows as f64 / out.wall_seconds;
        assert!((0.8..1.2).contains(&per_sec), "windows/s {per_sec}");
    }
}
