//! The Convolve application kernel (§IV.B), implemented for real.
//!
//! "Given an NxN matrix P and an MxM matrix Q with M<N and M odd,
//! convolving Q over P … involves, for each `R[i,j]`, superimposing Q over
//! P, centered at `P[i,j]`, multiplying the superimposed elements, and
//! summing the products. We parallelized this operation by splitting R up
//! into blocks of a configurable size, k, and spawning a thread for each.
//! … Each thread writes to thread-local memory, so there is no overhead
//! from locking."
//!
//! This module reproduces that design exactly: the image is zero-padded,
//! each k×k output block is computed by its own `std::thread` into
//! thread-local storage, and the blocks are assembled after the join
//! (outside any timed region, as in the paper). Arithmetic is integer
//! multiply-accumulate, matching "performing integer multiplications and
//! additions".

use std::thread;

/// A row-major integer image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Pixels, `rows * cols`, row-major.
    pub data: Vec<i64>,
}

impl Image {
    /// An all-zero image.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "empty image");
        Image { rows, cols, data: vec![0; rows * cols] }
    }

    /// Build from a generator function.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> i64) -> Self {
        let mut img = Image::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                img.data[r * cols + c] = f(r, c);
            }
        }
        img
    }

    /// Pixel accessor.
    pub fn at(&self, r: usize, c: usize) -> i64 {
        self.data[r * self.cols + c]
    }
}

/// The convolution kernel matrix: `m x m` with odd `m`.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Side length (odd).
    pub m: usize,
    /// Weights, row-major.
    pub w: Vec<i64>,
}

impl Kernel {
    /// Build from weights.
    pub fn new(m: usize, w: Vec<i64>) -> Self {
        assert!(m % 2 == 1, "kernel side must be odd, got {m}");
        assert_eq!(w.len(), m * m, "kernel weight count");
        Kernel { m, w }
    }

    /// The identity kernel (1 at the center).
    pub fn identity(m: usize) -> Self {
        let mut w = vec![0; m * m];
        w[(m / 2) * m + m / 2] = 1;
        Kernel::new(m, w)
    }

    /// A box kernel (all ones), an un-normalized blur.
    pub fn boxcar(m: usize) -> Self {
        Kernel::new(m, vec![1; m * m])
    }

    /// A discrete integer approximation of a Gaussian (binomial weights),
    /// the paper's "Gaussian filter over an image".
    pub fn gaussian(m: usize) -> Self {
        // Binomial row: C(m-1, k).
        let mut row = vec![1i64; m];
        for k in 1..m {
            row[k] = row[k - 1] * (m - k) as i64 / k as i64;
        }
        let mut w = vec![0; m * m];
        for i in 0..m {
            for j in 0..m {
                w[i * m + j] = row[i] * row[j];
            }
        }
        Kernel::new(m, w)
    }
}

/// Zero-padded convolution of one output pixel.
fn conv_at(img: &Image, ker: &Kernel, r: i64, c: i64) -> i64 {
    let half = (ker.m / 2) as i64;
    let mut acc = 0i64;
    for u in 0..ker.m as i64 {
        for v in 0..ker.m as i64 {
            let rr = r + u - half;
            let cc = c + v - half;
            if rr >= 0 && rr < img.rows as i64 && cc >= 0 && cc < img.cols as i64 {
                acc += img.at(rr as usize, cc as usize) * ker.w[(u * ker.m as i64 + v) as usize];
            }
        }
    }
    acc
}

/// Reference single-threaded convolution (the correctness oracle).
pub fn convolve_serial(img: &Image, ker: &Kernel) -> Image {
    let mut out = Image::zeros(img.rows, img.cols);
    for r in 0..img.rows {
        for c in 0..img.cols {
            out.data[r * img.cols + c] = conv_at(img, ker, r as i64, c as i64);
        }
    }
    out
}

/// Parallel convolution: the output is split into `block x block` tiles,
/// each computed by its own thread into thread-local memory; at most
/// `max_threads` tiles are in flight at once (the paper limits this
/// to 24).
pub fn convolve_blocked(img: &Image, ker: &Kernel, block: usize, max_threads: usize) -> Image {
    assert!(block > 0, "zero block size");
    assert!(max_threads > 0, "need at least one thread");
    let rows = img.rows;
    let cols = img.cols;
    // Tile origins.
    let tiles: Vec<(usize, usize)> = (0..rows)
        .step_by(block)
        .flat_map(|r| (0..cols).step_by(block).map(move |c| (r, c)))
        .collect();
    let mut out = Image::zeros(rows, cols);
    for wave in tiles.chunks(max_threads) {
        let results: Vec<((usize, usize), Vec<i64>)> = thread::scope(|s| {
            let handles: Vec<_> = wave
                .iter()
                .map(|&(r0, c0)| {
                    s.spawn(move || {
                        let rl = (r0 + block).min(rows);
                        let cl = (c0 + block).min(cols);
                        // Thread-local output tile.
                        let mut tile = Vec::with_capacity((rl - r0) * (cl - c0));
                        for r in r0..rl {
                            for c in c0..cl {
                                tile.push(conv_at(img, ker, r as i64, c as i64));
                            }
                        }
                        ((r0, c0), tile)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
                .collect()
        });
        // Assemble (outside the conceptual timed region).
        for ((r0, c0), tile) in results {
            let rl = (r0 + block).min(rows);
            let cl = (c0 + block).min(cols);
            let mut it = tile.into_iter();
            for r in r0..rl {
                for c in c0..cl {
                    // smi-lint: allow(no-panic): each tile is built with
                    // exactly (rl-r0)*(cl-c0) entries in the loop above.
                    out.data[r * cols + c] = it.next().expect("tile size");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;

    fn random_image(rng: &mut SimRng, rows: usize, cols: usize) -> Image {
        Image::from_fn(rows, cols, |_, _| rng.range_u64(0, 255) as i64 - 128)
    }

    #[test]
    fn identity_kernel_preserves_interior() {
        let mut rng = SimRng::new(1);
        let img = random_image(&mut rng, 16, 16);
        let out = convolve_serial(&img, &Kernel::identity(3));
        assert_eq!(out, img, "identity kernel must reproduce the image (zero padding)");
    }

    #[test]
    fn boxcar_on_constant_image() {
        let img = Image::from_fn(10, 10, |_, _| 2);
        let out = convolve_serial(&img, &Kernel::boxcar(3));
        // Interior pixels: 9 neighbours x 2 = 18; corner: 4 x 2 = 8.
        assert_eq!(out.at(5, 5), 18);
        assert_eq!(out.at(0, 0), 8);
        assert_eq!(out.at(0, 5), 12); // edge: 6 in-bounds neighbours
    }

    #[test]
    fn blocked_matches_serial() {
        let mut rng = SimRng::new(2);
        let img = random_image(&mut rng, 33, 29); // deliberately non-divisible
        let ker = Kernel::gaussian(5);
        let reference = convolve_serial(&img, &ker);
        for block in [1usize, 4, 7, 16, 64] {
            let out = convolve_blocked(&img, &ker, block, 8);
            assert_eq!(out, reference, "block={block}");
        }
    }

    #[test]
    fn thread_limit_does_not_change_result() {
        let mut rng = SimRng::new(3);
        let img = random_image(&mut rng, 24, 24);
        let ker = Kernel::boxcar(3);
        let reference = convolve_serial(&img, &ker);
        for max_threads in [1usize, 2, 24] {
            assert_eq!(convolve_blocked(&img, &ker, 4, max_threads), reference);
        }
    }

    #[test]
    fn gaussian_weights_are_binomial() {
        let k = Kernel::gaussian(3);
        assert_eq!(k.w, vec![1, 2, 1, 2, 4, 2, 1, 2, 1]);
        let k5 = Kernel::gaussian(5);
        assert_eq!(k5.w[2 * 5 + 2], 36); // center = C(4,2)^2
    }

    #[test]
    fn convolution_is_linear_in_the_image() {
        let mut rng = SimRng::new(4);
        let a = random_image(&mut rng, 12, 12);
        let b = random_image(&mut rng, 12, 12);
        let sum = Image::from_fn(12, 12, |r, c| a.at(r, c) + b.at(r, c));
        let ker = Kernel::gaussian(3);
        let ca = convolve_serial(&a, &ker);
        let cb = convolve_serial(&b, &ker);
        let csum = convolve_serial(&sum, &ker);
        for i in 0..csum.data.len() {
            assert_eq!(csum.data[i], ca.data[i] + cb.data[i]);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = Kernel::new(4, vec![0; 16]);
    }
}
