//! # apps — the paper's multithreaded workloads
//!
//! The §IV applications: [`convolve`] is the real threaded convolution
//! kernel (block decomposition, thread-local writes, exactly the paper's
//! design) with [`convolve_model`] providing the Figure-1 experiment
//! runs on the simulated machine; [`unixbench`] defines the five-test
//! UnixBench subset with the George-baseline index arithmetic plus real
//! work units, and [`ubench_model`] runs the suite on the simulated
//! machine for Figure 2.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod convolve;
pub mod convolve_model;
pub mod ubench_model;
pub mod unixbench;

pub use convolve::{convolve_blocked, convolve_serial, Image, Kernel};
pub use convolve_model::{run_convolve, ConvolveConfig, ConvolveOutcome, ConvolveRun};
pub use ubench_model::{run_suite, UbCosts, UnixBenchReport, TEST_DURATION};
pub use unixbench::{index, UbTest};
