//! Tool-developer view: detect SMIs, check BITS compliance, and watch a
//! sampling profiler misattribute SMM time (§I, §II.A, §V).
//!
//! ```sh
//! cargo run --release --example smi_detector
//! ```

use smi_lab::prelude::*;
use smi_lab::smi_driver::{check_bits, profile, Symbol};

fn main() {
    // A platform running RIM-style integrity checks from SMM: 40 ms
    // inspections every 500 ms (between the paper's short and long classes).
    let schedule = FreezeSchedule::periodic(PeriodicFreeze {
        first_trigger: SimTime::from_millis(333),
        period: SimDuration::from_millis(500),
        durations: DurationModel::Uniform {
            lo: SimDuration::from_millis(35),
            hi: SimDuration::from_millis(45),
        },
        policy: TriggerPolicy::SkipWhileFrozen,
        seed: 99,
    });
    let window = (SimTime::ZERO, SimTime::from_secs(30));

    println!("== 1. Detection (hwlat-style TSC polling) ==");
    let report = HwlatDetector::default().detect(&schedule, window.0, window.1, &Tsc::e5620());
    println!(
        "  {} spikes in 30 s ({} injected); mean spike {:.1} ms; total stolen {}",
        report.count(),
        schedule.count_between(window.0, window.1),
        report.total_latency.as_millis_f64() / report.count().max(1) as f64,
        report.total_latency,
    );

    println!("\n== 2. BIOSBITS compliance ==");
    let bits = check_bits(&schedule, window.0, window.1);
    println!(
        "  {} windows, {} over the 150 us threshold (max {}) -> {}",
        bits.windows,
        bits.violations,
        bits.max_residency,
        if bits.passes() { "PASS" } else { "FAIL" },
    );

    println!("\n== 3. What a sampling profiler reports ==");
    let symbols = vec![
        Symbol { name: "stencil_update".into(), work: SimDuration::from_millis(70) },
        Symbol { name: "halo_exchange".into(), work: SimDuration::from_millis(20) },
        Symbol { name: "critical_section".into(), work: SimDuration::from_millis(10) },
    ];
    let attr =
        profile(&symbols, &schedule, SimDuration::from_secs(30), SimDuration::from_millis(1));
    println!(
        "  {} samples, {} taken while the node was invisibly frozen:",
        attr.samples, attr.smm_samples
    );
    for s in &attr.shares {
        println!(
            "    {:>16}: true {:>5.1}%  reported {:>5.1}%  ({:+.1} pp)",
            s.name,
            s.true_share * 100.0,
            s.reported_share * 100.0,
            (s.reported_share - s.true_share) * 100.0,
        );
    }
    println!("\n  With many SMIs the bias averages out across the loop — deceptive!");

    println!("\n== 4. ...and the single-SMI worst case ==");
    // One 2 s RIM inspection landing while `critical_section` runs.
    let one_shot = FreezeSchedule::periodic(PeriodicFreeze {
        first_trigger: SimTime::from_millis(5_095),
        period: SimDuration::from_secs(1000),
        durations: DurationModel::Fixed(SimDuration::from_secs(2)),
        policy: TriggerPolicy::SkipWhileFrozen,
        seed: 1,
    });
    let attr =
        profile(&symbols, &one_shot, SimDuration::from_secs(10), SimDuration::from_millis(1));
    for s in &attr.shares {
        println!(
            "    {:>16}: true {:>5.1}%  reported {:>5.1}%  ({:+.1} pp)",
            s.name,
            s.true_share * 100.0,
            s.reported_share * 100.0,
            (s.reported_share - s.true_share) * 100.0,
        );
    }
    println!("\n  The kernel attributes SMM residency to whatever was interrupted;");
    println!("  a function holding a lock absorbs the entire SMI's samples, and");
    println!("  the developer goes hunting for a lock-contention bug that isn't there.");
}
