//! Visualize what the OS cannot see: a wall-time Gantt of four threads on
//! two cores with long SMIs freezing the whole node.
//!
//! ```sh
//! cargo run --release --example gantt
//! ```

use smi_lab::machine::{
    render_gantt, run_with_trace, Phase, SchedParams, ThreadProgram, ThreadSpec,
};
use smi_lab::prelude::*;
use smi_lab::sim_core::Trace;

fn main() {
    let mut topo = Topology::new(NodeSpec::dell_r410());
    topo.set_online_count(2);

    // Four threads, two cores: vruntime fairness interleaves them.
    let threads: Vec<ThreadSpec> = (0..4)
        .map(|_| {
            ThreadSpec::new(
                ThreadProgram::new().then(Phase::compute(SimDuration::from_millis(120))),
            )
        })
        .collect();
    let mut trace = Trace::enabled();
    let out = run_with_trace(&topo, &SchedParams::default(), &threads, &mut trace)
        .expect("compute-only threads cannot deadlock");

    println!("== no SMIs ==");
    let quiet = FreezeSchedule::none();
    let wall = quiet.advance(SimTime::ZERO, out.makespan);
    print!("{}", render_gantt(&trace, &quiet, wall, 96));

    println!("\n== long SMIs every 60 ms (same schedule of threads!) ==");
    let noisy = FreezeSchedule::periodic(PeriodicFreeze {
        first_trigger: SimTime::from_millis(25),
        period: SimDuration::from_millis(60),
        durations: DurationModel::Uniform {
            lo: SimDuration::from_millis(15),
            hi: SimDuration::from_millis(25),
        },
        policy: TriggerPolicy::SkipWhileFrozen,
        seed: 7,
    });
    let wall = noisy.advance(SimTime::ZERO, out.makespan);
    print!("{}", render_gantt(&trace, &noisy, wall, 96));

    println!("\nEvery `#` column freezes BOTH rows at once — SMIs are broadcast,");
    println!("which is why packing more ranks per node dilutes nothing, and why");
    println!("the kernel's accounting charges the `#` time to the threads shown.");
}
