//! Quickstart: inject SMIs, watch them hurt, detect them from user space.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use smi_lab::prelude::*;
use smi_lab::smi_driver::check_bits;

fn main() {
    println!("== smi-lab quickstart ==\n");

    // 1. Configure the Blackbox SMI driver the way the paper's MPI study
    //    does: one SMI per second, with short (1-3 ms) or long (100-110 ms)
    //    SMM residency.
    for class in [SmiClass::None, SmiClass::Short, SmiClass::Long] {
        let driver = SmiDriver::new(SmiDriverConfig::mpi_study(class));
        let mut rng = SimRng::new(2016);
        let schedule = driver.schedule_for_node(&mut rng);

        // 2. Run "an application": 30 seconds of useful work.
        let work = SimDuration::from_secs(30);
        let wall_end = schedule.advance(SimTime::ZERO, work);
        let frozen = schedule.frozen_between(SimTime::ZERO, wall_end);
        let slowdown = wall_end.as_secs_f64() / work.as_secs_f64();
        println!(
            "{}: 30 s of work takes {:.2} wall seconds ({:+.1} %), {} in SMM",
            class.label(),
            wall_end.as_secs_f64(),
            (slowdown - 1.0) * 100.0,
            frozen,
        );

        // 3. The OS cannot see any of this — but a TSC-polling loop can.
        let detector = HwlatDetector::default();
        let report = detector.detect(&schedule, SimTime::ZERO, wall_end, &Tsc::e5520());
        let injected = schedule.count_between(SimTime::ZERO, wall_end);
        println!(
            "   hwlat-style detector: {} spikes (injected: {injected}), max latency {}",
            report.count(),
            report.max_latency().map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
        );

        // 4. And BIOSBITS would flag the platform.
        let bits = check_bits(&schedule, SimTime::ZERO, wall_end);
        println!(
            "   BIOSBITS (150 us threshold): {} windows, {} violations -> {}\n",
            bits.windows,
            bits.violations,
            if bits.passes() { "PASS" } else { "FAIL" },
        );
    }

    println!("The long class costs ~10.5 % at 1 Hz — the paper's Tables 1-3");
    println!("show that number on one node, and far more once unsynchronized");
    println!("SMIs meet MPI synchronization (try `cargo run --example mpi_noise`).");
}
