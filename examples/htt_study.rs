//! The HTT × SMI interaction, §IV: offline HTT siblings through the
//! emulated sysfs exactly like the paper's scripts, then compare Convolve
//! under long SMIs with 4 and 8 logical CPUs.
//!
//! ```sh
//! cargo run --release --example htt_study
//! ```

use smi_lab::apps::{run_convolve, ConvolveConfig, ConvolveRun};
use smi_lab::machine::CpuSysfs;
use smi_lab::prelude::*;
use smi_lab::smi_driver::JIFFY;

fn main() {
    // The paper: "we used the Linux sysfs interface to selectively
    // offline specific logical cores".
    let mut topo = Topology::new(NodeSpec::dell_r410());
    {
        let mut sysfs = CpuSysfs::new(&mut topo);
        println!("present: {}", sysfs.read("/sys/devices/system/cpu/present").unwrap());
        for cpu in 4..8 {
            sysfs.write(&format!("/sys/devices/system/cpu/cpu{cpu}/online"), "0").unwrap();
        }
        println!(
            "after offlining HTT siblings: online = {}",
            sysfs.read("/sys/devices/system/cpu/online").unwrap()
        );
        println!(
            "cpu1 siblings: {}",
            sysfs.read("/sys/devices/system/cpu/cpu1/topology/thread_siblings_list").unwrap()
        );
    }

    println!("\n== Convolve under long SMIs, HTT off (4 CPUs) vs on (8 CPUs) ==\n");
    println!(
        "{:>16} {:>9} | {:>9} {:>9} {:>9}",
        "config", "interval", "4 CPUs", "8 CPUs", "HTT delta"
    );
    println!("{}", "-".repeat(60));
    for config in [ConvolveConfig::CacheUnfriendly, ConvolveConfig::CacheFriendly] {
        for interval_ms in [1500u64, 600, 200, 50] {
            let mut times = [0.0f64; 2];
            for (i, cpus) in [4u32, 8].into_iter().enumerate() {
                let driver =
                    SmiDriver::new(SmiDriverConfig::interval_ms(SmiClass::Long, interval_ms));
                let mut rng = SimRng::from_path(7, &["htt", config.label(), &cpus.to_string()]);
                let run = ConvolveRun {
                    config,
                    online_cpus: cpus,
                    schedule: driver.schedule_for_node(&mut rng),
                    effects: driver.side_effects(cpus > 4),
                    threads: 24,
                };
                times[i] = run_convolve(&run, &mut rng).wall_seconds;
            }
            println!(
                "{:>16} {:>6} ms | {:>8.2}s {:>8.2}s {:>+8.1}%",
                config.label(),
                interval_ms,
                times[0],
                times[1],
                (times[1] - times[0]) / times[0] * 100.0,
            );
        }
        println!();
    }
    println!("(1 jiffy = {JIFFY}; the driver triggers every `interval` jiffies.)");
    println!("Neither configuration gains much from HTT, and under frequent long");
    println!("SMIs the extra logical CPUs *hurt* — the paper's §IV observation.");
}
