//! MPI noise amplification: the paper's central result, §III.
//!
//! Runs NAS EP and BT on a simulated Wyeast cluster at increasing node
//! counts, with and without long SMIs, and prints the perturbation. The
//! amplification — long-SMI damage growing with scale even though the
//! per-node duty cycle is constant — emerges from unsynchronized per-node
//! freeze phases meeting collective synchronization.
//!
//! ```sh
//! cargo run --release --example mpi_noise
//! ```

use smi_lab::analysis::{measure_cell, RunOptions, SMM_CLASSES};
use smi_lab::nas::{calibrate_extra, table_cell, Bench, Class};
use smi_lab::prelude::*;

fn main() {
    let opts = RunOptions::default().with_reps(4);
    let network = NetworkParams::gigabit_cluster();
    println!("== SMI noise vs scale (class A, 1 rank/node, long SMIs at 1 Hz) ==\n");
    println!(
        "{:>5} {:>6} | {:>10} {:>10} {:>8} | {:>10}",
        "bench", "nodes", "SMM0 [s]", "SMM2 [s]", "impact", "paper"
    );
    println!("{}", "-".repeat(62));
    for bench in [Bench::Ep, Bench::Bt] {
        for &nodes in bench.node_counts() {
            let Some(paper) = table_cell(bench, Class::A, nodes, 1) else { continue };
            let target = paper.baseline().expect("class A is fully measured");
            let spec = ClusterSpec::wyeast(nodes, 1, false).expect("valid shape");
            let extra =
                calibrate_extra(bench, Class::A, &spec, &network, target).expect("calibrates");
            let label = format!("example-n{nodes}");
            let [base, _short, long] = SMM_CLASSES.map(|smm| {
                measure_cell(bench, Class::A, &spec, extra, smm, &opts, &network, &label)
                    .expect("measures")
            });
            let impact = (long.mean - base.mean) / base.mean * 100.0;
            let paper_impact = match (paper.smm[0], paper.smm[2]) {
                (Some(b), Some(l)) => format!("{:+.1} %", (l - b) / b * 100.0),
                _ => "-".into(),
            };
            println!(
                "{:>5} {:>6} | {:>10.2} {:>10.2} {:>+7.1}% | {:>10}",
                bench.name(),
                nodes,
                base.mean,
                long.mean,
                impact,
                paper_impact,
            );
        }
        println!();
    }
    println!("EP grows mildly (its only synchronization is start-up and the");
    println!("final reductions); BT, which exchanges halos every iteration,");
    println!("amplifies dramatically — matching Tables 1 and 2.");
}
