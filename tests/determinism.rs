//! System-level determinism: the whole reproduction pipeline — from
//! calibration through replication — must be bit-stable for a fixed seed
//! and decorrelated across seeds. This is what makes every number in
//! EXPERIMENTS.md re-derivable.

use smi_lab::analysis::{measure_cell, run_figure2, RunOptions, SMM_CLASSES};
use smi_lab::nas::{calibrate_extra, Bench, Class};
use smi_lab::prelude::*;
use smi_lab::smi_driver::SmiClass;

fn table_cell_fingerprint(seed: u64) -> Vec<u64> {
    let opts = RunOptions { reps: 3, seed, ..RunOptions::default() };
    let network = NetworkParams::gigabit_cluster();
    let spec = ClusterSpec::wyeast(4, 1, false).expect("valid shape");
    let extra = calibrate_extra(Bench::Ep, Class::A, &spec, &network, 5.84).expect("calibrates");
    SMM_CLASSES
        .iter()
        .map(|&smm| {
            measure_cell(Bench::Ep, Class::A, &spec, extra, smm, &opts, &network, "fp")
                .expect("measures")
                .mean
                .to_bits()
        })
        .collect()
}

#[test]
fn full_pipeline_is_bit_reproducible() {
    assert_eq!(table_cell_fingerprint(12345), table_cell_fingerprint(12345));
}

#[test]
fn different_seeds_differ_only_under_noise() {
    let a = table_cell_fingerprint(1);
    let b = table_cell_fingerprint(2);
    // SMM 1/2 cells carry phase randomness and must decorrelate; the
    // SMM 0 cell carries only compute jitter, which also depends on the
    // seed, so all three should differ — but by tiny relative amounts
    // for SMM 0.
    assert_ne!(a[2], b[2], "long-SMI cells should differ across seeds");
    let base_a = f64::from_bits(a[0]);
    let base_b = f64::from_bits(b[0]);
    assert!(
        (base_a - base_b).abs() / base_a < 0.02,
        "baselines should be jitter-close: {base_a} vs {base_b}"
    );
}

#[test]
fn figure2_is_reproducible() {
    let opts = RunOptions { reps: 2, seed: 777, ..RunOptions::default() };
    let a = run_figure2(&opts);
    let b = run_figure2(&opts);
    for (sa, sb) in a.long_series.iter().zip(&b.long_series) {
        for (pa, pb) in sa.points.iter().zip(&sb.points) {
            assert_eq!(pa.mean.to_bits(), pb.mean.to_bits());
        }
    }
}

/// FNV-1a 64-bit, re-derived here so the digest does not depend on any
/// crate's hash internals staying put.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Every Table 1–5 / Figure 1–2 cell record of a `--quick` campaign,
/// produced through the real runner at the given worker count with the
/// cache disabled (so the engine actually executes every cell).
fn campaign_records(jobs: usize) -> String {
    use smi_lab::analysis::cells::{figure1_cells, figure2_cells, htt_cells, table_cells};
    let opts = RunOptions::quick();
    let mut cells = Vec::new();
    for bench in [Bench::Bt, Bench::Ep, Bench::Ft] {
        cells.extend(table_cells(bench, &opts));
    }
    for bench in [Bench::Ep, Bench::Ft] {
        cells.extend(htt_cells(bench, &opts));
    }
    cells.extend(figure1_cells(&opts));
    cells.extend(figure2_cells(&opts));
    let mut r = runner::Runner::new(jobs);
    r.cache_mode = runner::CacheMode::Off;
    r.code_version = "golden-digest".to_string();
    let report = r.run("golden-digest", cells);
    assert_eq!(report.cells_failed, 0, "campaign cells must not panic");
    assert_eq!(report.cells_invalid, 0, "campaign cells must not be rejected");
    report.records_jsonl()
}

/// Golden digest of the full quick campaign's cell records, locked at
/// the last point the hot path was audited for byte-equivalence. Any
/// future optimization (event queue, freeze memoization, arenas, ...)
/// that perturbs a single record byte fails this test loudly — update
/// the constant only after deliberately changing simulation semantics,
/// never as part of a "performance" change.
const GOLDEN_CAMPAIGN_DIGEST: u64 = 0x3973ac67ffcc0734;

#[test]
fn campaign_records_match_golden_digest_across_job_counts() {
    let serial = campaign_records(1);
    let parallel = campaign_records(4);
    assert_eq!(serial, parallel, "records must not depend on --jobs");
    let digest = fnv1a64(serial.as_bytes());
    assert_eq!(
        digest, GOLDEN_CAMPAIGN_DIGEST,
        "campaign records changed: digest {digest:#018x} (expected {GOLDEN_CAMPAIGN_DIGEST:#018x}). \
         If a simulation-semantics change is intended, update the golden constant; \
         a hot-path optimization must instead preserve the bytes."
    );
}

#[test]
fn detector_and_msr_agree_across_many_configs() {
    use smi_lab::smi_driver::SmiCountMsr;
    for class in [SmiClass::Short, SmiClass::Long] {
        for period in [250u64, 700, 1000] {
            for seed in [1u64, 99] {
                let driver = SmiDriver::new(SmiDriverConfig::interval_ms(class, period));
                let mut rng = SimRng::new(seed);
                let schedule = driver.schedule_for_node(&mut rng);
                let end = SimTime::from_secs(12);
                let hwlat = HwlatDetector::default()
                    .detect(&schedule, SimTime::ZERO, end, &Tsc::e5620())
                    .count() as u64;
                let msr = SmiCountMsr::new(&schedule).delta(SimTime::ZERO, end);
                assert!(
                    hwlat.abs_diff(msr) <= 1,
                    "{class:?}@{period}ms seed {seed}: hwlat {hwlat} vs MSR {msr}"
                );
            }
        }
    }
}
