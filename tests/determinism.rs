//! System-level determinism: the whole reproduction pipeline — from
//! calibration through replication — must be bit-stable for a fixed seed
//! and decorrelated across seeds. This is what makes every number in
//! EXPERIMENTS.md re-derivable.

use smi_lab::analysis::{measure_cell, run_figure2, RunOptions, SMM_CLASSES};
use smi_lab::nas::{calibrate_extra, Bench, Class};
use smi_lab::prelude::*;
use smi_lab::smi_driver::SmiClass;

fn table_cell_fingerprint(seed: u64) -> Vec<u64> {
    let opts = RunOptions { reps: 3, seed, ..RunOptions::default() };
    let network = NetworkParams::gigabit_cluster();
    let spec = ClusterSpec::wyeast(4, 1, false).expect("valid shape");
    let extra = calibrate_extra(Bench::Ep, Class::A, &spec, &network, 5.84).expect("calibrates");
    SMM_CLASSES
        .iter()
        .map(|&smm| {
            measure_cell(Bench::Ep, Class::A, &spec, extra, smm, &opts, &network, "fp")
                .expect("measures")
                .mean
                .to_bits()
        })
        .collect()
}

#[test]
fn full_pipeline_is_bit_reproducible() {
    assert_eq!(table_cell_fingerprint(12345), table_cell_fingerprint(12345));
}

#[test]
fn different_seeds_differ_only_under_noise() {
    let a = table_cell_fingerprint(1);
    let b = table_cell_fingerprint(2);
    // SMM 1/2 cells carry phase randomness and must decorrelate; the
    // SMM 0 cell carries only compute jitter, which also depends on the
    // seed, so all three should differ — but by tiny relative amounts
    // for SMM 0.
    assert_ne!(a[2], b[2], "long-SMI cells should differ across seeds");
    let base_a = f64::from_bits(a[0]);
    let base_b = f64::from_bits(b[0]);
    assert!(
        (base_a - base_b).abs() / base_a < 0.02,
        "baselines should be jitter-close: {base_a} vs {base_b}"
    );
}

#[test]
fn figure2_is_reproducible() {
    let opts = RunOptions { reps: 2, seed: 777, ..RunOptions::default() };
    let a = run_figure2(&opts);
    let b = run_figure2(&opts);
    for (sa, sb) in a.long_series.iter().zip(&b.long_series) {
        for (pa, pb) in sa.points.iter().zip(&sb.points) {
            assert_eq!(pa.mean.to_bits(), pb.mean.to_bits());
        }
    }
}

#[test]
fn detector_and_msr_agree_across_many_configs() {
    use smi_lab::smi_driver::SmiCountMsr;
    for class in [SmiClass::Short, SmiClass::Long] {
        for period in [250u64, 700, 1000] {
            for seed in [1u64, 99] {
                let driver = SmiDriver::new(SmiDriverConfig::interval_ms(class, period));
                let mut rng = SimRng::new(seed);
                let schedule = driver.schedule_for_node(&mut rng);
                let end = SimTime::from_secs(12);
                let hwlat = HwlatDetector::default()
                    .detect(&schedule, SimTime::ZERO, end, &Tsc::e5620())
                    .count() as u64;
                let msr = SmiCountMsr::new(&schedule).delta(SimTime::ZERO, end);
                assert!(
                    hwlat.abs_diff(msr) <= 1,
                    "{class:?}@{period}ms seed {seed}: hwlat {hwlat} vs MSR {msr}"
                );
            }
        }
    }
}
