//! The soundness theorem behind the whole laboratory: because SMIs freeze
//! every logical CPU of a node simultaneously, freezing commutes with
//! node-local scheduling — simulating in work time and mapping the result
//! through the freeze schedule equals interleaving freezes into the
//! execution step by step.
//!
//! This test builds the step-by-step reference independently (a slice
//! executor that alternates between run segments and freeze windows) and
//! checks it against `FreezeSchedule::advance` and the machine executor.

use quickprop::{check, Gen};
use smi_lab::machine::{self, Phase, SchedParams, SmiSideEffects, ThreadProgram, ThreadSpec};
use smi_lab::prelude::*;

/// Reference implementation: walk wall time explicitly, alternating
/// between executable gaps and freeze windows, consuming `work`.
fn stepped_execution(schedule: &FreezeSchedule, start: SimTime, work: SimDuration) -> SimTime {
    let mut t = start;
    let mut remaining = work;
    // Step in coarse slices, checking frozenness as we go.
    while !remaining.is_zero() {
        if let Some((_, end)) = schedule.window_containing(t) {
            t = end;
            continue;
        }
        // Run until the next window or for the remaining work.
        let next = schedule.next_window_after(t).map(|(s, _)| s).unwrap_or(SimTime::MAX);
        let gap = next.since(t);
        if gap >= remaining {
            return t + remaining;
        }
        remaining -= gap;
        t = next;
    }
    t
}

fn schedule(g: &mut Gen) -> FreezeSchedule {
    FreezeSchedule::periodic(PeriodicFreeze {
        first_trigger: SimTime::from_nanos(g.u64(0..1_000_000_000)),
        period: SimDuration::from_nanos(g.u64(10_000_000..1_500_000_000)),
        durations: DurationModel::Fixed(SimDuration::from_nanos(g.u64(1_000_000..200_000_000))),
        policy: TriggerPolicy::SkipWhileFrozen,
        seed: g.any_u64(),
    })
}

#[test]
fn advance_equals_stepped_reference() {
    check("advance_equals_stepped_reference", 64, |g| {
        let s = schedule(g);
        let start = SimTime::from_nanos(g.u64(0..2_000_000_000));
        let work = SimDuration::from_nanos(g.u64(0..5_000_000_000));
        assert_eq!(s.advance(start, work), stepped_execution(&s, start, work));
    });
}

#[test]
fn per_thread_mapping_equals_makespan_mapping() {
    check("per_thread_mapping_equals_makespan_mapping", 64, |g| {
        // Independent threads, one per physical core: the node's wall
        // finish is the max of per-thread wall finishes, and both orders
        // of (max, map) agree because advance is monotone.
        let s = schedule(g);
        let works = g.vec_u64(1..8, 1_000_000..3_000_000_000);
        let per_thread_wall: Vec<SimTime> =
            works.iter().map(|&w| s.advance(SimTime::ZERO, SimDuration::from_nanos(w))).collect();
        let makespan_work = SimDuration::from_nanos(*works.iter().max().expect("nonempty"));
        let mapped_makespan = s.advance(SimTime::ZERO, makespan_work);
        assert_eq!(per_thread_wall.into_iter().max().expect("nonempty"), mapped_makespan);
    });
}

#[test]
fn scheduler_then_map_equals_executor() {
    // The executor (with no side effects) must agree exactly with mapping
    // the scheduler's work-time makespan through the schedule.
    let topo = Topology::new(NodeSpec::dell_r410());
    let threads: Vec<ThreadSpec> = (0..6)
        .map(|i| {
            ThreadSpec::new(
                ThreadProgram::new().then(Phase::compute(SimDuration::from_millis(40 + 13 * i))),
            )
        })
        .collect();
    let sched = machine::run(&topo, &SchedParams::default(), &threads).expect("no deadlock");

    let schedule = FreezeSchedule::periodic(PeriodicFreeze {
        first_trigger: SimTime::from_millis(17),
        period: SimDuration::from_millis(90),
        durations: DurationModel::Fixed(SimDuration::from_millis(25)),
        policy: TriggerPolicy::SkipWhileFrozen,
        seed: 3,
    });
    let executor = machine::NodeExecutor::new(&schedule, SmiSideEffects::none(), 8, 0.0, 0.0);
    let via_executor = executor.execute(SimTime::ZERO, sched.makespan).wall_end;
    let via_algebra = schedule.advance(SimTime::ZERO, sched.makespan);
    let via_reference = stepped_execution(&schedule, SimTime::ZERO, sched.makespan);
    assert_eq!(via_executor, via_algebra);
    assert_eq!(via_algebra, via_reference);
}
