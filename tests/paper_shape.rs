//! End-to-end shape checks: the qualitative claims of the paper's
//! evaluation, asserted against the full reproduction pipeline with
//! reduced replication. Each test names the claim it pins.

use smi_lab::analysis::{measure_cell, RunOptions, SMM_CLASSES};
use smi_lab::nas::{calibrate_extra, table_cell, Bench, Class};
use smi_lab::prelude::*;
use smi_lab::smi_driver::SmiClass;

fn opts() -> RunOptions {
    RunOptions { reps: 3, seed: 11, ..RunOptions::default() }
}

fn impacts(bench: Bench, class: Class, nodes: u32, rpn: u32, htt: bool) -> (f64, f64) {
    let network = NetworkParams::gigabit_cluster();
    let spec = ClusterSpec::wyeast(nodes, rpn, htt).expect("valid shape");
    let target = table_cell(bench, class, nodes, rpn)
        .and_then(|c| c.baseline())
        .expect("cell measured in the paper");
    let extra = calibrate_extra(bench, class, &spec, &network, target).expect("calibrates");
    let label = format!("shape-{}-{}-{}-{}-{}", bench.name(), class.letter(), nodes, rpn, htt);
    let [base, short, long] = SMM_CLASSES.map(|smm| {
        measure_cell(bench, class, &spec, extra, smm, &opts(), &network, &label).expect("measures")
    });
    ((short.mean - base.mean) / base.mean * 100.0, (long.mean - base.mean) / base.mean * 100.0)
}

#[test]
fn claim_short_smis_produce_only_jitter() {
    // "We see minor or no impact from short SMM intervals on any BT
    // configuration" — and the same for EP and FT.
    for (bench, nodes) in [(Bench::Bt, 4u32), (Bench::Ep, 8), (Bench::Ft, 4)] {
        let (short, _) = impacts(bench, Class::A, nodes, 1, false);
        assert!(
            short.abs() < 3.0,
            "{} short-SMI impact {short}% exceeds the noise floor",
            bench.name()
        );
    }
}

#[test]
fn claim_long_smis_cost_at_least_the_duty_cycle() {
    // On a single node the long class must cost roughly its duty cycle
    // (~10.5%), as in every Table 1-3 one-node row (+10.1 to +11.7%).
    for bench in [Bench::Ep, Bench::Bt, Bench::Ft] {
        let (_, long) = impacts(bench, Class::B, 1, 1, false);
        assert!((8.0..18.0).contains(&long), "{} one-node long-SMI impact {long}%", bench.name());
    }
}

#[test]
fn claim_bt_amplifies_with_scale() {
    // Table 1: the impact of the long SMIs increases with the number of
    // MPI ranks.
    let (_, one) = impacts(Bench::Bt, Class::A, 1, 1, false);
    let (_, four) = impacts(Bench::Bt, Class::A, 4, 1, false);
    let (_, sixteen) = impacts(Bench::Bt, Class::A, 16, 1, false);
    assert!(four > one + 10.0, "4-node impact {four}% vs 1-node {one}%");
    assert!(sixteen > four + 10.0, "16-node impact {sixteen}% vs 4-node {four}%");
}

#[test]
fn claim_ep_amplifies_mildly_with_scale() {
    // Table 2: "a pattern of increasing perturbation as the number of
    // nodes increases from 1 to 16", but far weaker than BT's.
    let (_, one) = impacts(Bench::Ep, Class::A, 1, 1, false);
    let (_, sixteen) = impacts(Bench::Ep, Class::A, 16, 1, false);
    assert!(sixteen > one + 3.0, "16-node {sixteen}% vs 1-node {one}%");
    assert!(sixteen < 60.0, "EP amplification should stay mild: {sixteen}%");
}

#[test]
fn claim_four_ranks_per_node_is_hit_at_least_as_hard() {
    // SMIs freeze whole nodes, so packing 4 ranks per node does not
    // dilute the damage (Table 2's right block shows larger percentages
    // than the left at equal node counts).
    let (_, spread) = impacts(Bench::Ep, Class::A, 8, 1, false);
    let (_, packed) = impacts(Bench::Ep, Class::A, 8, 4, false);
    assert!(
        packed > spread - 3.0,
        "packed {packed}% should not be materially below spread {spread}%"
    );
}

#[test]
fn claim_htt_worsens_ep_under_long_smis() {
    // Table 4: EP's long-SMI column shows ht=1 slower than ht=0 in 13 of
    // 15 cells.
    let network = NetworkParams::gigabit_cluster();
    let mut deltas = Vec::new();
    for nodes in [1u32, 4] {
        let mut means = [0.0f64; 2];
        for (i, htt) in [false, true].into_iter().enumerate() {
            let spec = ClusterSpec::wyeast(nodes, 4, htt).expect("valid shape");
            let cell = smi_lab::nas::htt_cell(Bench::Ep, Class::B, nodes).expect("cell");
            let extra = calibrate_extra(Bench::Ep, Class::B, &spec, &network, cell.smm_ht[0][i])
                .expect("calibrates");
            means[i] = measure_cell(
                Bench::Ep,
                Class::B,
                &spec,
                extra,
                SmiClass::Long,
                &opts(),
                &network,
                &format!("httshape-{nodes}-{htt}"),
            )
            .expect("measures")
            .mean;
        }
        deltas.push((means[1] - means[0]) / means[0] * 100.0);
    }
    for d in &deltas {
        assert!(*d > 0.0, "HTT should cost EP under long SMIs: deltas {deltas:?}");
    }
}

#[test]
fn claim_detection_recovers_what_the_driver_injects() {
    // Cross-stack: driver -> schedule -> polling detector, across both
    // classes and several periods.
    for class in [SmiClass::Short, SmiClass::Long] {
        for period in [400u64, 1000] {
            let driver = SmiDriver::new(SmiDriverConfig::interval_ms(class, period));
            let mut rng = SimRng::new(period ^ 0xABCD);
            let schedule = driver.schedule_for_node(&mut rng);
            let end = SimTime::from_secs(20);
            let truth = schedule.count_between(SimTime::ZERO, end);
            let found = HwlatDetector::default()
                .detect(&schedule, SimTime::ZERO, end, &Tsc::e5620())
                .count();
            assert!(
                found.abs_diff(truth) <= 1,
                "{class:?}@{period}ms: found {found} vs injected {truth}"
            );
        }
    }
}

#[test]
fn claim_calibration_reproduces_every_available_baseline() {
    // Every cell with a paper SMM-0 value must calibrate to within 3%.
    let network = NetworkParams::gigabit_cluster();
    let ones = |n: u32| vec![1.0; n as usize];
    for bench in [Bench::Ep, Bench::Bt, Bench::Ft] {
        for class in [Class::A, Class::C] {
            for &nodes in bench.node_counts() {
                for rpn in [1u32, 4] {
                    let Some(target) =
                        table_cell(bench, class, nodes, rpn).and_then(|c| c.baseline())
                    else {
                        continue;
                    };
                    let spec = ClusterSpec::wyeast(nodes, rpn, false).expect("valid shape");
                    let extra =
                        calibrate_extra(bench, class, &spec, &network, target).expect("calibrates");
                    let progs = smi_lab::nas::programs(
                        bench,
                        class,
                        &spec,
                        extra,
                        &ones(spec.total_ranks()),
                    );
                    let t = smi_lab::mpi_sim::run(
                        &spec,
                        &smi_lab::nas::quiet_nodes(&spec),
                        &progs,
                        &network,
                    )
                    .expect("valid job")
                    .seconds();
                    assert!(
                        (t - target).abs() / target < 0.03,
                        "{} {} n{nodes} r{rpn}: {t} vs {target}",
                        bench.name(),
                        class.letter()
                    );
                }
            }
        }
    }
}
