//! Cross-crate kernel checks: the real computational kernels anchor the
//! workload models, so their outputs must line up with what the models
//! assume.

use smi_lab::apps::{convolve_blocked, convolve_serial, Image, Kernel};
use smi_lab::cache_sim::{classify, CacheBehavior};
use smi_lab::nas::ep::{ep_parallel, ep_serial, verify};
use smi_lab::nas::ft::{Complex, Field3};
use smi_lab::nas::Class;
use smi_lab::prelude::*;

#[test]
fn ep_mpi_decomposition_matches_published_sums() {
    // The EP workload model splits pairs evenly across ranks; the real
    // kernel split the same way must still verify against NPB's class S
    // reference values.
    for ranks in [1u64, 4, 16] {
        let merged = ep_parallel(Class::S, ranks);
        assert!(
            verify(Class::S, &merged),
            "class S with {ranks} ranks: sx={} sy={}",
            merged.sx,
            merged.sy
        );
    }
}

#[test]
fn ep_work_is_evenly_divisible_for_every_paper_rank_count() {
    // Every rank count in Tables 2 and 4 divides the pair count exactly
    // (powers of two), so the model's equal split is faithful.
    for class in Class::PAPER {
        let pairs = 1u64 << class.ep_log_pairs();
        for ranks in [1u64, 2, 4, 8, 16, 32, 64] {
            assert_eq!(pairs % ranks, 0);
        }
    }
    let serial = ep_serial(Class::S);
    assert!(serial.gc() > 0);
}

#[test]
fn convolve_kernel_and_model_agree_on_configuration_labels() {
    // The Figure-1 model's cachegrind step must classify its two
    // configurations the way the paper's cachegrind run did.
    use smi_lab::apps::ConvolveConfig;
    let cf = ConvolveConfig::CacheFriendly.memory_profile();
    let cu = ConvolveConfig::CacheUnfriendly.memory_profile();
    assert_eq!(classify(cf.l1_miss_ratio), CacheBehavior::Friendly);
    assert_eq!(classify(cu.l1_miss_ratio), CacheBehavior::Unfriendly);
    // And the paper's headline numbers: ~1% and well above 40%.
    assert!(cf.l1_miss_ratio < 0.02, "CF miss ratio {}", cf.l1_miss_ratio);
    assert!(cu.l1_miss_ratio > 0.40, "CU miss ratio {}", cu.l1_miss_ratio);
}

#[test]
fn convolve_threaded_kernel_is_exact_under_the_papers_parameters() {
    // A miniature of the paper's setup: blocked threads over a Gaussian
    // kernel — identical to the serial result regardless of block size.
    let mut rng = SimRng::new(1234);
    let img = Image::from_fn(48, 48, |_, _| rng.range_u64(0, 255) as i64);
    let ker = Kernel::gaussian(5);
    let expect = convolve_serial(&img, &ker);
    assert_eq!(convolve_blocked(&img, &ker, 4, 24), expect);
    assert_eq!(convolve_blocked(&img, &ker, 16, 2), expect);
}

#[test]
fn ft_field_roundtrips_under_class_s_geometry() {
    let ((nx, ny, nz), _) = Class::S.ft_grid();
    let mut f = Field3::zeros((nx as usize / 8, ny as usize / 8, nz as usize / 8));
    let mut rng = SimRng::new(5);
    for v in &mut f.data {
        *v = Complex::new(rng.uniform_range(-1.0, 1.0), rng.uniform_range(-1.0, 1.0));
    }
    let before = f.data.clone();
    f.fft3(false);
    f.evolve(1e-6, 0.0); // t = 0: identity
    f.fft3(true);
    for (a, b) in f.data.iter().zip(&before) {
        assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
    }
}

#[test]
fn bt_solver_survives_a_sweep_of_line_lengths() {
    use smi_lab::nas::bt::{solve, BlockTriSystem, Mat5};
    // The BT model's grid lines range from n/q to n; the solver must be
    // robust across that whole range.
    let mut rng = SimRng::new(77);
    for n in [1usize, 2, 16, 64, 162] {
        let mut a: Vec<Mat5> = Vec::new();
        let mut b = Vec::new();
        let mut c = Vec::new();
        let mut r = Vec::new();
        for i in 0..n {
            let mut mk = |scale: f64| {
                let mut m = [[0.0; 5]; 5];
                for row in &mut m {
                    for v in row.iter_mut() {
                        *v = rng.uniform_range(-scale, scale);
                    }
                }
                m
            };
            a.push(if i > 0 { mk(0.15) } else { [[0.0; 5]; 5] });
            let mut d = mk(0.2);
            for (k, row) in d.iter_mut().enumerate() {
                row[k] += 4.0;
            }
            b.push(d);
            c.push(if i + 1 < n { mk(0.15) } else { [[0.0; 5]; 5] });
            r.push([1.0, -1.0, 0.5, 2.0, -0.5]);
        }
        let sys = BlockTriSystem { a, b, c, r };
        let x = solve(&sys);
        let ax = sys.apply(&x);
        for (i, (got, want)) in ax.iter().zip(&sys.r).enumerate() {
            for k in 0..5 {
                assert!((got[k] - want[k]).abs() < 1e-8, "n={n} i={i} k={k}");
            }
        }
    }
}

#[test]
fn full_stack_smoke_noise_hurts_and_detection_sees_it() {
    // One compact pass over the entire stack: cluster job + SMIs +
    // detection + attribution consistency.
    let spec = ClusterSpec::wyeast(4, 1, false).expect("valid shape");
    let network = NetworkParams::gigabit_cluster();
    let progs: Vec<RankProgram> = (0..4)
        .map(|_| {
            RankProgram::new(vec![
                Op::Compute(SimDuration::from_secs(2)),
                Op::Allreduce { bytes: 64 },
            ])
        })
        .collect();
    let quiet = smi_lab::nas::quiet_nodes(&spec);
    let base = smi_lab::mpi_sim::run(&spec, &quiet, &progs, &network).expect("valid job");

    let driver = SmiDriver::new(SmiDriverConfig::mpi_study(SmiClass::Long));
    let mut rng = SimRng::new(9);
    let noisy: Vec<NodeState> = (0..4)
        .map(|_| NodeState {
            schedule: driver.schedule_for_node(&mut rng),
            effects: driver.side_effects(false),
            online_cpus: 4,
            per_core: Vec::new(),
        })
        .collect();
    let perturbed = smi_lab::mpi_sim::run(&spec, &noisy, &progs, &network).expect("valid job");
    assert!(perturbed.makespan > base.makespan);
    assert!(perturbed.total_frozen > SimDuration::ZERO);

    // The detector on node 0 sees exactly the windows the engine counted
    // for node 0.
    let end = SimTime::ZERO + perturbed.makespan;
    let report =
        HwlatDetector::default().detect(&noisy[0].schedule, SimTime::ZERO, end, &Tsc::e5520());
    assert_eq!(report.count(), noisy[0].schedule.count_between(SimTime::ZERO, end));
}
