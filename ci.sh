#!/bin/sh
# Hermetic CI gate: build, test, and lint the whole workspace with no
# network access. Any external dependency in any manifest breaks the
# --offline resolution here — see DESIGN.md §6 (dependency policy).
set -eux

cargo build --release --workspace --offline
cargo test -q --workspace --offline
# Chaos gate: the seeded fault-injection suite (runner::chaos) proving
# panic isolation, retry/quarantine, cache-corruption recovery, orphan
# sweeping, and crash-safe resume — plus fault-path equivalence of the
# optimized engine hot path (calendar queue / cursor cache / arena):
# real simulation cells retried under injected faults must reproduce
# the fault-free bytes (tests/chaos_engine_equivalence.rs), and the
# process-isolation gate (tests/isolate.rs): campaigns against a real
# worker subprocess surviving SIGKILL, abort(), hangs, and deadline
# kills with byte-identical surviving records. See DESIGN.md "Failure
# semantics", §10 "Performance methodology", and §13.
cargo test -q -p runner --features chaos --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo clippy -p runner --features chaos --all-targets --offline -- -D warnings
cargo fmt --check
# Determinism & hermeticity lint (crates/smi-lint): fails on any finding
# not ratcheted into the baseline, now including the whole-workspace
# passes (SMI007 taint reachability, SMI008 lock-order cycles, SMI009
# panic paths). See DESIGN.md "Static analysis" and §12.
# The lint must itself be deterministic: two runs — one serial, one with
# a parallel file scan — must produce byte-identical reports, and the
# JSON report (call chains included) must survive a jsonio round-trip.
LINT_SCRATCH="$(mktemp -d)"
cargo run -q --release -p smi-lint --offline -- --format json --jobs 1 \
    --baseline results/lint-baseline.json > "$LINT_SCRATCH/lint-1.json"
cargo run -q --release -p smi-lint --offline -- --format json --jobs 4 \
    --baseline results/lint-baseline.json > "$LINT_SCRATCH/lint-4.json"
cmp "$LINT_SCRATCH/lint-1.json" "$LINT_SCRATCH/lint-4.json"
cargo run -q --release -p smi-lint --offline -- --verify-report "$LINT_SCRATCH/lint-1.json"
# Graph export smoke: both DOT renderings must produce parseable output.
cargo run -q --release -p smi-lint --offline -- --graph call > "$LINT_SCRATCH/calls.dot"
cargo run -q --release -p smi-lint --offline -- --graph lock > "$LINT_SCRATCH/locks.dot"
grep -q '^digraph calls' "$LINT_SCRATCH/calls.dot"
grep -q '^digraph locks' "$LINT_SCRATCH/locks.dot"
rm -rf "$LINT_SCRATCH"
# Validity gate: one table regeneration under the engine's full opt-in
# audit (--validate; DESIGN.md §9 "Simulation validity"). --no-cache so
# every cell actually runs the simulation instead of a cache hit.
./target/release/smi-lab table2 --quick --validate --no-cache >/dev/null
# Noise smoke: the noise-model subsystem end-to-end (crates/noise) —
# one campaign cell per fixed-budget scenario family through the real
# runner into a scratch cache. The binary itself re-reads the run
# manifest and re-parses it via jsonio (cli::verify_manifest); a
# non-zero exit means a cell quarantined or the manifest was malformed.
NOISE_SMOKE_DIR="$(mktemp -d)"
./target/release/smi-lab noise --quick --no-cache --cache-dir "$NOISE_SMOKE_DIR" >/dev/null
rm -rf "$NOISE_SMOKE_DIR"
# Isolation smoke: process-isolated campaign execution end-to-end
# (DESIGN.md §13). One campaign under --isolate with a worker SIGKILLed
# on a named cell must exit degraded (1) with the cell quarantined as
# worker-crash; a --resume without the kill must heal to exit 0
# recomputing only that cell; and the final records must be
# byte-identical to a plain in-process run — subprocess transport,
# crash recovery, and cache replay all invisible in the record bytes.
ISO_SMOKE_DIR="$(mktemp -d)"
./target/release/smi-lab table2 --quick --no-cache \
    --cache-dir "$ISO_SMOKE_DIR/cache" \
    --records "$ISO_SMOKE_DIR/inproc.jsonl" >/dev/null
rc=0
./target/release/smi-lab table2 --quick --jobs 2 --isolate \
    --isolate-kill A-n1-r1 \
    --cache-dir "$ISO_SMOKE_DIR/cache" >/dev/null 2>&1 || rc=$?
test "$rc" -eq 1
grep -q '"worker-crash"' "$ISO_SMOKE_DIR/cache/manifests/table2.json"
./target/release/smi-lab table2 --quick --jobs 2 --isolate --resume \
    --cache-dir "$ISO_SMOKE_DIR/cache" \
    --records "$ISO_SMOKE_DIR/isolated.jsonl" >/dev/null
cmp "$ISO_SMOKE_DIR/inproc.jsonl" "$ISO_SMOKE_DIR/isolated.jsonl"
rm -rf "$ISO_SMOKE_DIR"
# Durability gate: the content-addressed store and vfs fault injection
# end-to-end (DESIGN.md §14). A campaign under a seed-driven storm of
# torn writes, short reads, ENOSPC, EIO, rename failures, and dropped
# fsyncs must drain (exit 0 or degraded 1, never wedge); `smi-lab fsck
# --repair` must restore the store to Clean and a plain re-audit must
# agree; a clean --resume must recompute exactly the lost cells and
# produce records byte-identical to a fault-free run; and the final
# manifest must carry the typed storage account.
DUR_DIR="$(mktemp -d)"
./target/release/smi-lab table2 --quick --no-cache \
    --cache-dir "$DUR_DIR/ref-cache" \
    --records "$DUR_DIR/reference.jsonl" >/dev/null
rc=0
./target/release/smi-lab table2 --quick --jobs 1 \
    --cache-dir "$DUR_DIR/cache" \
    --vfs-faults "seed=7,torn=60,shortread=40,enospc=60,eio=40,renamefail=60,dropfsync=80" \
    >/dev/null 2>&1 || rc=$?
test "$rc" -le 1
./target/release/smi-lab fsck --cache-dir "$DUR_DIR/cache" --repair >/dev/null
./target/release/smi-lab fsck --cache-dir "$DUR_DIR/cache"
./target/release/smi-lab table2 --quick --jobs 1 --resume \
    --cache-dir "$DUR_DIR/cache" \
    --records "$DUR_DIR/survivors.jsonl" >/dev/null
cmp "$DUR_DIR/reference.jsonl" "$DUR_DIR/survivors.jsonl"
grep -q '"storage"' "$DUR_DIR/cache/manifests/table2.json"
rm -rf "$DUR_DIR"
# Bench smoke: the perf harness end-to-end at a tiny sample count,
# writing to a scratch path so the committed BENCH_engine.json baseline
# (recorded at the default 40 samples) is never clobbered by CI. A zero
# exit certifies the report re-parsed via jsonio and every suite case
# ran at the requested sample count (cli::benchcmd::verify_report).
BENCH_SMOKE_OUT="$(mktemp -d)/BENCH_engine.json"
./target/release/smi-lab bench --samples 2 --out "$BENCH_SMOKE_OUT" >/dev/null
rm -rf "$(dirname "$BENCH_SMOKE_OUT")"
# Stats gate: adaptive sampling and CI-overlap bench gating end-to-end
# (DESIGN.md §15). An adaptive campaign at two-rep minimum must drain
# into a schema-6 manifest whose `stats` block carries the power check
# (the binary re-reads and re-parses the manifest itself via
# cli::verify_manifest; the greps below pin the machine-readable shape).
STATS_DIR="$(mktemp -d)"
./target/release/smi-lab table2 --quick --adaptive --max-reps 4 \
    --ci-target 0.02 --no-cache --cache-dir "$STATS_DIR/cache" >/dev/null
grep -q '"schema": 6' "$STATS_DIR/cache/manifests/table2.json"
grep -q '"designed"' "$STATS_DIR/cache/manifests/table2.json"
grep -q '"power"' "$STATS_DIR/cache/manifests/table2.json"
# A planted regression — one case whose baseline interval sits far below
# anything the engine can do — must fail `bench --gate` with exit 1,
# while gating against the committed baseline (wide margin to absorb
# machine-to-machine noise at 2 samples) must pass with exit 0.
cat > "$STATS_DIR/planted.json" <<'EOF'
{
  "schema": 2,
  "benchmarks": [
    {"name": "event_queue_near_monotone", "ci_lo_ns": 1, "ci_hi_ns": 2}
  ]
}
EOF
rc=0
./target/release/smi-lab bench --samples 2 --out "$STATS_DIR/gated.json" \
    --gate "$STATS_DIR/planted.json" >/dev/null 2>&1 || rc=$?
test "$rc" -eq 1
./target/release/smi-lab bench --samples 2 --out "$STATS_DIR/gated.json" \
    --gate results/BENCH_engine.json --gate-margin 400 >/dev/null
rm -rf "$STATS_DIR"
