#!/bin/sh
# Hermetic CI gate: build, test, and lint the whole workspace with no
# network access. Any external dependency in any manifest breaks the
# --offline resolution here — see DESIGN.md §6 (dependency policy).
set -eux

cargo build --release --workspace --offline
cargo test -q --workspace --offline
# Chaos gate: the seeded fault-injection suite (runner::chaos) proving
# panic isolation, retry/quarantine, cache-corruption recovery, orphan
# sweeping, and crash-safe resume. See DESIGN.md "Failure semantics".
cargo test -q -p runner --features chaos --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo clippy -p runner --features chaos --all-targets --offline -- -D warnings
cargo fmt --check
# Determinism & hermeticity lint (crates/smi-lint): fails on any finding
# not ratcheted into the baseline. See DESIGN.md "Static analysis".
cargo run -q --release -p smi-lint --offline -- --format json --baseline results/lint-baseline.json
# Validity gate: one table regeneration under the engine's full opt-in
# audit (--validate; DESIGN.md §9 "Simulation validity"). --no-cache so
# every cell actually runs the simulation instead of a cache hit.
./target/release/smi-lab table2 --quick --validate --no-cache >/dev/null
