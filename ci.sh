#!/bin/sh
# Hermetic CI gate: build, test, and lint the whole workspace with no
# network access. Any external dependency in any manifest breaks the
# --offline resolution here — see DESIGN.md §6 (dependency policy).
set -eux

cargo build --release --workspace --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
