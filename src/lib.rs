//! # smi-lab — a System Management Interrupt noise laboratory
//!
//! A simulation-based reproduction of *"The Effects of System Management
//! Interrupts on Multithreaded, Hyper-threaded, and MPI Applications"*
//! (Macarenco, Frye, Hamlin, Karavanic — ICPP 2016).
//!
//! Real SMIs require ring-0 access to chipset port 0xB2, a cooperative
//! BIOS, and — for the paper's headline results — a 16-node cluster.
//! This crate substitutes a deterministic discrete-event model whose
//! central object is the [`FreezeSchedule`](sim_core::FreezeSchedule):
//! windows of wall time during which every logical CPU of a node makes no
//! progress, invisibly to the OS. Everything else in the paper is built
//! on top and re-exported here:
//!
//! * [`sim_core`] — simulated time, the freeze algebra, deterministic RNG;
//! * [`cache_sim`] — a cachegrind-style hierarchy simulator;
//! * [`machine`] — an SMP node with Hyper-Threading, CPU hotplug, a
//!   CFS-like scheduler and the SMI side-effect executor;
//! * [`smi_driver`] — the Blackbox SMI driver model, hwlat-style
//!   detection, BIOSBITS compliance, profiler attribution;
//! * [`mpi_sim`] — a cluster + MPI runtime with collectives lowered to
//!   point-to-point rounds;
//! * [`nas`] — NAS EP/BT/FT kernels (verified against published check
//!   values) and calibrated workload models;
//! * [`apps`] — Convolve and UnixBench;
//! * [`analysis`] — the harness that regenerates every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use smi_lab::prelude::*;
//!
//! // One SMI per second, 100-110 ms in SMM (the paper's "long" class).
//! let driver = SmiDriver::new(SmiDriverConfig::mpi_study(SmiClass::Long));
//! let mut rng = SimRng::new(42);
//! let schedule = driver.schedule_for_node(&mut rng);
//!
//! // 10 seconds of application work now takes ~11.2 wall seconds.
//! let end = schedule.advance(SimTime::ZERO, SimDuration::from_secs(10));
//! assert!(end > SimTime::from_secs(11));
//!
//! // ...and a TSC-polling detector recovers every injected SMI.
//! let report = HwlatDetector::default()
//!     .detect(&schedule, SimTime::ZERO, end, &Tsc::e5520());
//! assert_eq!(report.count(), schedule.count_between(SimTime::ZERO, end));
//! ```

#![deny(unsafe_code)]

pub use analysis;
pub use apps;
pub use cache_sim;
pub use machine;
pub use mpi_sim;
pub use nas;
pub use sim_core;
pub use smi_driver;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use analysis::RunOptions;
    pub use machine::{NodeSpec, SmiSideEffects, Topology};
    pub use mpi_sim::{ClusterSpec, NetworkParams, NodeState, Op, RankProgram};
    pub use nas::{Bench, Class};
    pub use sim_core::{
        DurationModel, FreezeSchedule, PeriodicFreeze, SimDuration, SimRng, SimTime, TriggerPolicy,
    };
    pub use smi_driver::{HwlatDetector, SmiClass, SmiDriver, SmiDriverConfig, Tsc};
}
